//! Tree routing in the fixed-port model — **Lemma 3** of Roditty & Tov
//! (PODC 2015), following Thorup–Zwick (SPAA'01) and Fraigniaud–Gavoille.
//!
//! Lemma 3 (as used by the paper): *for every tree `T` there is a labeled
//! routing scheme that, given the label of a destination, routes on `T`
//! along the unique tree path, where every vertex stores `O(1)` words of
//! routing information and labels are `O(log² n / log log n)` bits.*
//!
//! Concretely: given a rooted tree `T` that is a subgraph of the host
//! graph, the scheme assigns every tree vertex a constant number of
//! `O(log n)`-bit words of *local* routing information ([`TreeNodeInfo`])
//! and an `O(log² n / log log n)`-bit *label* ([`TreeLabel`]), such that a
//! message can be routed from any tree vertex to any other along the unique
//! tree path using only the local information of the current vertex and the
//! destination's label.
//!
//! Lemma 3 is the workhorse the whole paper leans on: the Lemma 7/8
//! techniques in `routing-core` finish every route by switching into a
//! shortest-path-tree or cluster-tree segment routed with exactly this
//! scheme, and the Thorup–Zwick baseline in `routing-baselines` routes
//! inside every cluster `C(w)` the same way. Both embed copies of
//! [`TreeNodeInfo`]/[`TreeLabel`] into their own tables and labels and call
//! [`tree_route_step`] directly, which is why the per-vertex structures are
//! public.
//!
//! The construction is the classic heavy-path one:
//!
//! * a DFS assigns every vertex an interval `[tin, tout)` covering its
//!   subtree;
//! * each internal vertex remembers the port and interval of its **heavy**
//!   child (the child with the largest subtree) plus the port to its parent;
//! * the label of `v` lists, for every **light** edge `(p, x)` on the path
//!   from the root to `v`, the pair `(tin(p), port at p towards x)`. Because
//!   subtree sizes at least halve across light edges there are `O(log n)`
//!   such entries.
//!
//! Routing at `u` towards `v`: deliver if `tin(v) = tin(u)`; go to the parent
//! if `v` is outside `u`'s interval; go to the heavy child if `v` is inside
//! its interval; otherwise the label contains the light port to take at `u`.
//!
//! The per-vertex structures ([`TreeNodeInfo`], [`TreeLabel`]) are exposed so
//! that the compact routing schemes of the paper can embed copies of them in
//! their own routing tables and labels; [`TreeScheme`] additionally
//! implements [`RoutingScheme`] so the tree router can be tested standalone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use routing_graph::shortest_path::{RestrictedTree, ShortestPathTree};
use routing_graph::{Graph, Port, SearchScratch, VertexId};
use routing_model::{Decision, HeaderSize, RouteError, RoutingScheme};

/// Errors produced while building a tree router.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreeBuildError {
    /// A parent edge is not present in the host graph.
    MissingEdge {
        /// The child endpoint.
        child: VertexId,
        /// The declared parent endpoint.
        parent: VertexId,
    },
    /// The parent relation does not form a single tree rooted at `root`
    /// (a cycle, a second component, or a vertex not reaching the root).
    NotATree {
        /// Description of the violation.
        what: String,
    },
}

impl fmt::Display for TreeBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeBuildError::MissingEdge { child, parent } => {
                write!(f, "tree edge ({child}, {parent}) is not an edge of the host graph")
            }
            TreeBuildError::NotATree { what } => write!(f, "parent relation is not a tree: {what}"),
        }
    }
}

impl Error for TreeBuildError {}

/// The constant-size local routing information a tree vertex stores.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeNodeInfo {
    /// DFS entry time of this vertex.
    pub tin: u32,
    /// DFS exit time: the subtree of this vertex is `[tin, tout)`.
    pub tout: u32,
    /// Port towards the parent (`None` at the root).
    pub parent_port: Option<Port>,
    /// `(tin, tout, port)` of the heavy child, if any.
    pub heavy: Option<(u32, u32, Port)>,
}

impl TreeNodeInfo {
    /// Size in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        2 + usize::from(self.parent_port.is_some()) + if self.heavy.is_some() { 3 } else { 0 }
    }

    /// True if `tin` falls inside this vertex's subtree interval.
    #[inline]
    pub fn subtree_contains(&self, tin: u32) -> bool {
        self.tin <= tin && tin < self.tout
    }
}

/// The label of a destination vertex in the tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeLabel {
    /// DFS entry time of the destination.
    pub tin: u32,
    /// For every light edge `(p, x)` on the root-to-destination path, the
    /// pair `(tin(p), port at p towards x)`, ordered from the root down.
    pub light_ports: Vec<(u32, Port)>,
}

impl TreeLabel {
    /// Size in `O(log n)`-bit words.
    pub fn words(&self) -> usize {
        1 + 2 * self.light_ports.len()
    }
}

/// Makes one local routing decision on a tree, given only the current
/// vertex's [`TreeNodeInfo`] and the destination's [`TreeLabel`].
///
/// This free function is what the compact routing schemes call with node
/// information they copied into their own tables.
///
/// # Errors
///
/// Returns an error if the inputs are inconsistent (the destination appears
/// to be below the current vertex via a light edge that the label does not
/// describe) — this indicates corrupted preprocessing, not a routable
/// situation.
pub fn tree_route_step(node: &TreeNodeInfo, dest: &TreeLabel) -> Result<Decision, RouteError> {
    if dest.tin == node.tin {
        return Ok(Decision::Deliver);
    }
    if !node.subtree_contains(dest.tin) {
        let port = node.parent_port.ok_or_else(|| RouteError::MissingInformation {
            at: VertexId(u32::MAX),
            what: "destination outside the tree rooted here (no parent port)".into(),
        })?;
        return Ok(Decision::Forward(port));
    }
    if let Some((h_tin, h_tout, h_port)) = node.heavy {
        if h_tin <= dest.tin && dest.tin < h_tout {
            return Ok(Decision::Forward(h_port));
        }
    }
    // The destination is in a light subtree below this vertex; the label
    // records which port to take here.
    dest.light_ports
        .iter()
        .find(|&&(p_tin, _)| p_tin == node.tin)
        .map(|&(_, port)| Decision::Forward(port))
        .ok_or_else(|| RouteError::MissingInformation {
            at: VertexId(u32::MAX),
            what: "destination label lacks the light port for this vertex".into(),
        })
}

/// A complete tree routing scheme for one rooted tree.
#[derive(Debug, Clone)]
pub struct TreeScheme {
    name: String,
    root: VertexId,
    n_graph: usize,
    // lint:allow(det-hash-iter): keyed lookups at query time only; never iterated
    nodes: HashMap<VertexId, TreeNodeInfo>,
    // lint:allow(det-hash-iter): keyed lookups at query time only; never iterated
    labels: HashMap<VertexId, TreeLabel>,
}

impl TreeScheme {
    /// Builds the tree router from an explicit parent relation.
    ///
    /// `parents` maps every non-root tree vertex to its parent; the root must
    /// not appear as a key. Every parent edge must exist in `g` (ports are
    /// taken from `g`).
    ///
    /// # Errors
    ///
    /// Returns an error if a parent edge is missing from the graph or the
    /// relation is not a tree rooted at `root`.
    pub fn from_parents(
        g: &Graph,
        root: VertexId,
        // lint:allow(det-hash-iter): iterated only to populate per-child entries of `children`, whose lists are sorted before any order-sensitive use
        parents: &HashMap<VertexId, VertexId>,
    ) -> Result<Self, TreeBuildError> {
        if parents.contains_key(&root) {
            return Err(TreeBuildError::NotATree { what: format!("root {root} has a parent") });
        }
        // children lists
        // lint:allow(det-hash-iter): every kids list is sort_unstable()d below, and per-key work in later iterations is order-independent
        let mut children: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        children.entry(root).or_default();
        for (&c, &p) in parents {
            if g.port_to(p, c).is_none() {
                return Err(TreeBuildError::MissingEdge { child: c, parent: p });
            }
            children.entry(p).or_default();
            children.entry(c).or_default();
            children.get_mut(&p).expect("just inserted").push(c);
        }
        for kids in children.values_mut() {
            kids.sort_unstable();
        }
        let tree_size = parents.len() + 1;
        if children.len() != tree_size {
            return Err(TreeBuildError::NotATree {
                what: format!("{} vertices reachable but {} declared", children.len(), tree_size),
            });
        }

        // Iterative DFS computing tin/tout and subtree sizes.
        // lint:allow(det-hash-iter): keyed lookups only; DFS visit order is fixed by the sorted children lists, so every tin value is deterministic
        let mut tin: HashMap<VertexId, u32> = HashMap::new();
        // lint:allow(det-hash-iter): keyed lookups only, deterministic values (see tin)
        let mut tout: HashMap<VertexId, u32> = HashMap::new();
        // lint:allow(det-hash-iter): keyed lookups only, deterministic values (see tin)
        let mut size: HashMap<VertexId, u32> = HashMap::new();
        let mut clock = 0u32;
        let mut stack: Vec<(VertexId, usize)> = vec![(root, 0)];
        tin.insert(root, clock);
        clock += 1;
        loop {
            let (v, idx) = match stack.last() {
                Some(&top) => top,
                None => break,
            };
            let kids = &children[&v];
            if idx < kids.len() {
                stack.last_mut().expect("stack is non-empty").1 += 1;
                let c = kids[idx];
                if tin.contains_key(&c) {
                    return Err(TreeBuildError::NotATree {
                        what: format!("vertex {c} visited twice (cycle)"),
                    });
                }
                tin.insert(c, clock);
                clock += 1;
                stack.push((c, 0));
            } else {
                tout.insert(v, clock);
                let s = 1 + kids.iter().map(|c| size.get(c).copied().unwrap_or(0)).sum::<u32>();
                size.insert(v, s);
                stack.pop();
            }
        }
        if tin.len() != tree_size {
            return Err(TreeBuildError::NotATree {
                what: "some declared vertices are not reachable from the root".into(),
            });
        }

        // Node info: parent port + heavy child.
        // lint:allow(det-hash-iter): filled per key from deterministic inputs; visit order of the fill loop cannot affect any entry
        let mut nodes: HashMap<VertexId, TreeNodeInfo> = HashMap::new();
        for (&v, kids) in &children {
            let parent_port = parents
                .get(&v)
                .map(|&p| g.port_to(v, p).expect("parent edge checked above"));
            let heavy = kids
                .iter()
                .max_by_key(|&&c| (size[&c], std::cmp::Reverse(c)))
                .map(|&c| {
                    let port = g.port_to(v, c).expect("child edge checked above");
                    (tin[&c], tout[&c], port)
                });
            nodes.insert(v, TreeNodeInfo { tin: tin[&v], tout: tout[&v], parent_port, heavy });
        }

        // Labels: walk from each vertex up to the root collecting light edges.
        // lint:allow(det-hash-iter): filled per key from deterministic inputs; visit order of the fill loop cannot affect any entry
        let mut labels: HashMap<VertexId, TreeLabel> = HashMap::new();
        for &v in children.keys() {
            let mut light_rev: Vec<(u32, Port)> = Vec::new();
            let mut cur = v;
            while let Some(&p) = parents.get(&cur) {
                let heavy_child_tin = nodes[&p].heavy.map(|(h_tin, _, _)| h_tin);
                if heavy_child_tin != Some(tin[&cur]) {
                    let port = g.port_to(p, cur).expect("parent edge checked above");
                    light_rev.push((tin[&p], port));
                }
                cur = p;
            }
            light_rev.reverse();
            labels.insert(v, TreeLabel { tin: tin[&v], light_ports: light_rev });
        }

        Ok(TreeScheme {
            name: format!("tree-routing(root={root})"),
            root,
            n_graph: g.n(),
            nodes,
            labels,
        })
    }

    /// Builds the router from a single-source shortest-path tree, spanning
    /// every vertex reachable from its source.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeBuildError`] (cannot occur for a well-formed SPT of
    /// `g`).
    pub fn from_spt(g: &Graph, spt: &ShortestPathTree) -> Result<Self, TreeBuildError> {
        // lint:allow(det-hash-iter): consumed by from_parents, which is order-insensitive (children lists sorted there)
        let mut parents = HashMap::new();
        for (v, _) in spt.reachable() {
            if let Some(p) = spt.parent(v) {
                parents.insert(v, p);
            }
        }
        Self::from_parents(g, spt.source(), &parents)
    }

    /// Builds the router for a cluster tree produced by
    /// [`routing_graph::shortest_path::cluster_dijkstra`].
    ///
    /// # Errors
    ///
    /// Propagates [`TreeBuildError`] (cannot occur for a well-formed cluster
    /// tree of `g`).
    pub fn from_restricted(g: &Graph, tree: &RestrictedTree) -> Result<Self, TreeBuildError> {
        // lint:allow(det-hash-iter): consumed by from_parents, which is order-insensitive (children lists sorted there)
        let mut parents = HashMap::new();
        for &(v, _) in tree.members() {
            if let Some(Some(p)) = tree.parent(v) {
                parents.insert(v, p);
            }
        }
        Self::from_parents(g, tree.root(), &parents)
    }

    /// Builds the router straight from the last search run on a
    /// [`SearchScratch`] — a full Dijkstra (`dijkstra_into`) or a restricted
    /// cluster search (`cluster_into`) — without materializing an owned
    /// [`ShortestPathTree`]/[`RestrictedTree`] first. The settled vertices
    /// become the tree; the result is identical to going through
    /// [`TreeScheme::from_spt`]/[`TreeScheme::from_restricted`].
    ///
    /// The tree covers exactly the vertices the search settled. A
    /// target-bounded search (`dijkstra_targets_into`) therefore yields a
    /// tree over its settled prefix only — callers that need a spanning
    /// tree (e.g. Technique 1's global hitting-set trees) must run the full
    /// search.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeBuildError`] (cannot occur for a well-formed search
    /// on `g`).
    pub fn from_scratch(g: &Graph, scratch: &SearchScratch) -> Result<Self, TreeBuildError> {
        // lint:allow(det-hash-iter): consumed by from_parents, which is order-insensitive (children lists sorted there)
        let mut parents = HashMap::with_capacity(scratch.order().len());
        for &(v, _) in scratch.order() {
            if let Some(p) = scratch.parent(v) {
                parents.insert(v, p);
            }
        }
        Self::from_parents(g, scratch.source(), &parents)
    }

    /// The root of the tree.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Number of vertices in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree contains only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Returns true if `v` is a tree vertex.
    pub fn contains(&self, v: VertexId) -> bool {
        self.nodes.contains_key(&v)
    }

    /// Iterator over the tree's vertices (arbitrary order).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.nodes.keys().copied()
    }

    /// The local routing information of tree vertex `v`.
    pub fn node_info(&self, v: VertexId) -> Option<&TreeNodeInfo> {
        self.nodes.get(&v)
    }

    /// The tree label of tree vertex `v`.
    pub fn label(&self, v: VertexId) -> Option<&TreeLabel> {
        self.labels.get(&v)
    }
}

/// Header used when routing purely on a tree (nothing needs to be carried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeHeader;

impl HeaderSize for TreeHeader {
    fn words(&self) -> usize {
        0
    }
}

impl RoutingScheme for TreeScheme {
    type Label = TreeLabel;
    type Header = TreeHeader;

    fn name(&self) -> &str {
        &self.name
    }

    fn n(&self) -> usize {
        self.n_graph
    }

    fn label_of(&self, v: VertexId) -> TreeLabel {
        self.labels
            .get(&v)
            .cloned()
            .unwrap_or(TreeLabel { tin: u32::MAX, light_ports: Vec::new() })
    }

    fn init_header(&self, source: VertexId, dest: &TreeLabel) -> Result<TreeHeader, RouteError> {
        if dest.tin == u32::MAX {
            return Err(RouteError::BadLabel { what: "destination is not in the tree".into() });
        }
        if !self.nodes.contains_key(&source) {
            return Err(RouteError::MissingInformation {
                at: source,
                what: "source is not in the tree".into(),
            });
        }
        Ok(TreeHeader)
    }

    fn decide(
        &self,
        at: VertexId,
        _header: &mut TreeHeader,
        dest: &TreeLabel,
    ) -> Result<Decision, RouteError> {
        let node = self.nodes.get(&at).ok_or_else(|| RouteError::MissingInformation {
            at,
            what: "vertex is not in the tree".into(),
        })?;
        tree_route_step(node, dest).map_err(|e| match e {
            RouteError::MissingInformation { what, .. } => RouteError::MissingInformation { at, what },
            other => other,
        })
    }

    fn table_words(&self, v: VertexId) -> usize {
        self.nodes.get(&v).map(TreeNodeInfo::words).unwrap_or(0)
    }

    fn label_words(&self, v: VertexId) -> usize {
        self.labels.get(&v).map(TreeLabel::words).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing_graph::generators;
    use routing_graph::shortest_path::{cluster_dijkstra, dijkstra, multi_source_dijkstra};
    use routing_model::simulate;

    fn spt_scheme(g: &Graph, root: VertexId) -> TreeScheme {
        TreeScheme::from_spt(g, &dijkstra(g, root)).expect("valid spt")
    }

    #[test]
    fn routes_on_path_graph() {
        let g = generators::path(10);
        let t = spt_scheme(&g, VertexId(0));
        for u in g.vertices() {
            for v in g.vertices() {
                let out = simulate(&g, &t, u, v).unwrap();
                assert_eq!(out.destination(), v);
                assert_eq!(out.hops, (u.0 as i64 - v.0 as i64).unsigned_abs() as usize);
            }
        }
    }

    #[test]
    fn routes_on_star_center_and_leaves() {
        let g = generators::star(8);
        let t = spt_scheme(&g, VertexId(0));
        let out = simulate(&g, &t, VertexId(3), VertexId(5)).unwrap();
        assert_eq!(out.path, vec![VertexId(3), VertexId(0), VertexId(5)]);
    }

    #[test]
    fn routes_follow_tree_paths_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi(
            80,
            0.06,
            generators::WeightModel::Uniform { lo: 1, hi: 8 },
            &mut rng,
        );
        let root = VertexId(0);
        let spt = dijkstra(&g, root);
        let t = TreeScheme::from_spt(&g, &spt).unwrap();
        // Routing to the root must follow the shortest path in the graph
        // (tree paths to the root are graph shortest paths).
        for v in g.vertices() {
            let out = simulate(&g, &t, v, root).unwrap();
            assert_eq!(Some(out.weight), spt.dist(v), "weight from {v} to root");
        }
        // Tree-path weight between arbitrary vertices is bounded by the sum
        // of their distances to the root.
        for (u, v) in [(VertexId(3), VertexId(61)), (VertexId(17), VertexId(42))] {
            let out = simulate(&g, &t, u, v).unwrap();
            assert!(out.weight <= spt.dist(u).unwrap() + spt.dist(v).unwrap());
        }
    }

    #[test]
    fn label_sizes_are_logarithmic() {
        let g = generators::binary_tree(1023);
        let t = spt_scheme(&g, VertexId(0));
        let max_label = g.vertices().map(|v| t.label_words(v)).max().unwrap();
        // Light edges at least halve subtree sizes, so at most log2(n)
        // entries of 2 words each, plus the tin word.
        assert!(max_label <= 1 + 2 * 10, "label too large: {max_label}");
        let max_table = g.vertices().map(|v| t.table_words(v)).max().unwrap();
        assert!(max_table <= 6);
    }

    #[test]
    fn caterpillar_high_degree_nodes() {
        let g = generators::caterpillar(10, 8);
        let t = spt_scheme(&g, VertexId(0));
        for v in g.vertices() {
            let out = simulate(&g, &t, VertexId(55), v).unwrap();
            assert_eq!(out.destination(), v);
        }
    }

    #[test]
    fn cluster_tree_routing() {
        let g = generators::grid(6, 6);
        let sources = [VertexId(35)];
        let ms = multi_source_dijkstra(&g, &sources);
        let bound: Vec<_> = g.vertices().map(|v| ms.dist(v).unwrap()).collect();
        let cluster = cluster_dijkstra(&g, VertexId(0), &bound);
        let t = TreeScheme::from_restricted(&g, &cluster).unwrap();
        assert!(t.len() > 1);
        for &(v, d) in cluster.members() {
            let out = simulate(&g, &t, VertexId(0), v).unwrap();
            assert_eq!(out.weight, d, "cluster tree routes on shortest paths from the root");
        }
    }

    #[test]
    fn from_scratch_matches_the_materializing_constructors() {
        let g = generators::grid(6, 6);
        let mut scratch = SearchScratch::for_graph(&g);

        scratch.dijkstra_into(&g, VertexId(7));
        let a = TreeScheme::from_scratch(&g, &scratch).unwrap();
        let b = TreeScheme::from_spt(&g, &dijkstra(&g, VertexId(7))).unwrap();
        for v in g.vertices() {
            assert_eq!(a.node_info(v), b.node_info(v));
            assert_eq!(a.label(v), b.label(v));
        }

        let ms = multi_source_dijkstra(&g, &[VertexId(35)]);
        let bound: Vec<_> = g.vertices().map(|v| ms.dist(v).unwrap()).collect();
        scratch.cluster_into(&g, VertexId(0), &bound);
        let a = TreeScheme::from_scratch(&g, &scratch).unwrap();
        let b =
            TreeScheme::from_restricted(&g, &cluster_dijkstra(&g, VertexId(0), &bound)).unwrap();
        assert_eq!(a.len(), b.len());
        for v in g.vertices() {
            assert_eq!(a.node_info(v), b.node_info(v));
            assert_eq!(a.label(v), b.label(v));
        }
    }

    #[test]
    fn non_members_are_rejected() {
        let g = generators::path(6);
        // Tree containing only vertices 0..=2.
        let mut parents = HashMap::new();
        parents.insert(VertexId(1), VertexId(0));
        parents.insert(VertexId(2), VertexId(1));
        let t = TreeScheme::from_parents(&g, VertexId(0), &parents).unwrap();
        assert!(t.contains(VertexId(2)));
        assert!(!t.contains(VertexId(5)));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let err = simulate(&g, &t, VertexId(0), VertexId(5)).unwrap_err();
        assert!(matches!(err, RouteError::BadLabel { .. }));
        let err = simulate(&g, &t, VertexId(5), VertexId(0)).unwrap_err();
        assert!(matches!(err, RouteError::MissingInformation { .. }));
    }

    #[test]
    fn build_rejects_missing_edges_and_cycles() {
        let g = generators::path(4);
        let mut parents = HashMap::new();
        parents.insert(VertexId(3), VertexId(0)); // not an edge
        let err = TreeScheme::from_parents(&g, VertexId(0), &parents).unwrap_err();
        assert_eq!(err, TreeBuildError::MissingEdge { child: VertexId(3), parent: VertexId(0) });

        let mut parents = HashMap::new();
        parents.insert(VertexId(0), VertexId(1)); // root has a parent
        let err = TreeScheme::from_parents(&g, VertexId(0), &parents).unwrap_err();
        assert!(matches!(err, TreeBuildError::NotATree { .. }));
        assert!(err.to_string().contains("not a tree"));

        // Disconnected declaration: vertex 3's parent chain never reaches root 0.
        let mut parents = HashMap::new();
        parents.insert(VertexId(1), VertexId(0));
        parents.insert(VertexId(3), VertexId(2));
        let err = TreeScheme::from_parents(&g, VertexId(0), &parents).unwrap_err();
        assert!(matches!(err, TreeBuildError::NotATree { .. }));
    }

    #[test]
    fn node_info_and_label_accessors() {
        let g = generators::path(4);
        let t = spt_scheme(&g, VertexId(0));
        let info = t.node_info(VertexId(1)).unwrap();
        assert!(info.words() >= 3);
        assert!(info.subtree_contains(t.label(VertexId(3)).unwrap().tin));
        assert_eq!(t.root(), VertexId(0));
        assert_eq!(t.vertices().count(), 4);
        assert!(t.label(VertexId(2)).unwrap().words() >= 1);
        assert_eq!(t.name(), "tree-routing(root=v0)");
        assert_eq!(RoutingScheme::n(&t), 4);
    }

    #[test]
    fn free_function_step_matches_scheme_decide() {
        let g = generators::binary_tree(15);
        let t = spt_scheme(&g, VertexId(0));
        let dest = t.label_of(VertexId(13));
        for v in g.vertices() {
            let node = t.node_info(v).unwrap();
            let a = tree_route_step(node, &dest).unwrap();
            let b = t.decide(v, &mut TreeHeader, &dest).unwrap();
            assert_eq!(a, b);
        }
    }
}
