//! The hierarchical span profiler: scoped timers building a per-thread
//! span tree, merged across `routing-par` workers into one deterministic
//! forest.
//!
//! # Usage
//!
//! ```
//! routing_obs::reset();
//! routing_obs::set_profiling(true);
//! {
//!     let _outer = routing_obs::span("build");
//!     let _inner = routing_obs::span("balls");
//!     // ... work ...
//! }
//! routing_obs::set_profiling(false);
//! let forest = routing_obs::report();
//! assert_eq!(forest[0].name, "build");
//! assert_eq!(forest[0].children[0].name, "balls");
//! assert_eq!(forest[0].children[0].count, 1);
//! ```
//!
//! # Cost model
//!
//! Disabled (the default): [`span`] is one relaxed atomic load returning a
//! guard with a `None` start — no allocation, no thread-local access, no
//! clock read. Enabled: one clock read at enter and one at drop, plus a
//! linear child-name scan in a thread-local arena (no hashing, no
//! allocation after a name's first occurrence under a given parent).
//!
//! # Worker aggregation
//!
//! `routing_par::par_map_scratch` forks worker threads that know nothing
//! about the span stack of their caller. The first [`set_profiling`]`(true)`
//! registers [`routing_par::ParHooks`]: at the fork site the caller's open
//! span path is interned to a token; each worker opens that path as an
//! uncounted prefix, records its own spans beneath it, and flushes its tree
//! into the global forest before exiting. Merging is by name with summed
//! counts and durations — commutative and associative, so the resulting
//! tree structure and counts are identical for every thread count.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span profiling is currently enabled — one relaxed load; the
/// whole disabled-path cost of [`span`].
#[inline]
pub fn profiling_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span profiling on or off process-wide.
///
/// The first `set_profiling(true)` also registers the profiler's
/// [`routing_par::ParHooks`] so parallel fan-outs aggregate worker spans;
/// the hooks themselves check the enabled flag and are inert afterwards
/// when profiling is off.
pub fn set_profiling(on: bool) {
    if on {
        install_par_hooks();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// One merged span: a name, how many times a span of that name closed at
/// this tree position, the summed wall-clock, and the child spans opened
/// beneath it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The name passed to [`span`].
    pub name: &'static str,
    /// Number of times a span with this name closed at this position.
    pub count: u64,
    /// Total wall-clock spent inside, nanoseconds (includes children).
    pub total_ns: u64,
    /// Child spans, sorted by name in a [`report`] snapshot.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total wall-clock in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// Arena node of a thread-local (or the global) span tree.
#[derive(Clone)]
struct Node {
    name: &'static str,
    count: u64,
    total_ns: u64,
    children: Vec<usize>,
}

/// A per-thread span tree under construction: an arena of nodes (index 0
/// is the synthetic root) plus the stack of currently open spans.
struct Collector {
    nodes: Vec<Node>,
    stack: Vec<usize>,
    /// Stack depth of the worker prefix (0 on ordinary threads): spans
    /// opened by [`Collector::open_prefix`] that must not be closed by
    /// ordinary exits.
    prefix_depth: usize,
}

impl Collector {
    fn new() -> Self {
        Collector {
            nodes: vec![Node { name: "", count: 0, total_ns: 0, children: Vec::new() }],
            stack: vec![0],
            prefix_depth: 0,
        }
    }

    /// Finds or creates the child named `name` under the top of the stack
    /// and pushes it.
    fn enter(&mut self, name: &'static str) {
        let top = *self.stack.last().expect("root never pops");
        let found = self.nodes[top].children.iter().copied().find(|&c| self.nodes[c].name == name);
        let idx = match found {
            Some(c) => c,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(Node { name, count: 0, total_ns: 0, children: Vec::new() });
                self.nodes[top].children.push(idx);
                idx
            }
        };
        self.stack.push(idx);
    }

    /// Pops the top span, attributing `ns` of wall-clock and one count.
    fn exit(&mut self, ns: u64) {
        if self.stack.len() <= 1 + self.prefix_depth {
            // Unbalanced exit (profiling toggled mid-span, or a worker
            // prefix boundary): drop the sample rather than corrupt the
            // tree.
            return;
        }
        let idx = self.stack.pop().expect("checked non-prefix depth above");
        self.nodes[idx].count += 1;
        self.nodes[idx].total_ns += ns;
    }

    /// Opens `path` as an uncounted prefix (worker threads: the span path
    /// that was open at the fork site).
    fn open_prefix(&mut self, path: &[&'static str]) {
        for &name in path {
            self.enter(name);
        }
        self.prefix_depth = self.stack.len() - 1;
    }

    /// The names of the currently open spans, outermost first.
    fn current_path(&self) -> Vec<&'static str> {
        self.stack[1..].iter().map(|&i| self.nodes[i].name).collect()
    }

    /// Recursively merges the subtree rooted at `idx` into `dst`.
    fn merge_into(&self, idx: usize, dst: &mut Vec<SpanNode>) {
        let node = &self.nodes[idx];
        let entry = match dst.iter_mut().find(|s| s.name == node.name) {
            Some(e) => e,
            None => {
                dst.push(SpanNode {
                    name: node.name,
                    count: 0,
                    total_ns: 0,
                    children: Vec::new(),
                });
                dst.last_mut().expect("just pushed")
            }
        };
        entry.count += node.count;
        entry.total_ns += node.total_ns;
        for &c in &node.children {
            self.merge_into(c, &mut entry.children);
        }
    }

    /// Flushes everything recorded on this thread into the global forest
    /// and resets the local tree (open prefixes included).
    fn flush(&mut self) {
        let root_children: Vec<usize> = self.nodes[0].children.clone();
        if !root_children.is_empty() {
            let mut global = global_forest().lock().expect("no panicked flusher");
            for idx in root_children {
                self.merge_into(idx, &mut global);
            }
        }
        *self = Collector::new();
    }
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
}

/// The merged forest every thread flushes into.
fn global_forest() -> &'static Mutex<Vec<SpanNode>> {
    static FOREST: OnceLock<Mutex<Vec<SpanNode>>> = OnceLock::new();
    FOREST.get_or_init(|| Mutex::new(Vec::new()))
}

/// Fork-site span paths interned for worker threads; a token handed to
/// [`routing_par::ParHooks::worker_start`] indexes this table.
fn fork_paths() -> &'static Mutex<Vec<Vec<&'static str>>> {
    static PATHS: OnceLock<Mutex<Vec<Vec<&'static str>>>> = OnceLock::new();
    PATHS.get_or_init(|| Mutex::new(Vec::new()))
}

/// A scoped span timer: created by [`span`], records on drop. Inert (and
/// allocation-free) when profiling was disabled at creation.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    start: Option<Instant>,
}

/// Opens a span named `name` under the innermost open span of this thread
/// and returns the guard that closes it on drop.
///
/// Disabled profiling: one relaxed atomic load, an inert guard, nothing
/// else. `name` must be a `'static` literal — the tree stores borrowed
/// names and merges by pointer-free string equality.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !profiling_enabled() {
        return Span { start: None };
    }
    COLLECTOR.with(|c| c.borrow_mut().enter(name));
    Span { start: Some(Instant::now()) }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            COLLECTOR.with(|c| c.borrow_mut().exit(ns));
        }
    }
}

/// Opens a named span for the rest of the enclosing scope:
/// `routing_obs::span_scope!("balls");` is
/// `let _guard = routing_obs::span("balls");` with a hygienic binding.
#[macro_export]
macro_rules! span_scope {
    ($name:expr) => {
        let _span_guard = $crate::span($name);
    };
}

/// Flushes the calling thread's recorded spans into the global forest.
///
/// [`report`] does this implicitly for its caller; long-lived threads that
/// record spans but never call `report` (e.g. resident shard workers) can
/// flush explicitly.
pub fn flush_local() {
    COLLECTOR.with(|c| c.borrow_mut().flush());
}

/// Clears every recorded span: the global forest, the interned fork paths
/// and the calling thread's local tree.
pub fn reset() {
    COLLECTOR.with(|c| *c.borrow_mut() = Collector::new());
    global_forest().lock().expect("no panicked flusher").clear();
    fork_paths().lock().expect("no panicked flusher").clear();
}

/// Flushes the calling thread and returns a snapshot of the merged span
/// forest, children sorted by name at every level (deterministic
/// structure; durations are measurements).
pub fn report() -> Vec<SpanNode> {
    flush_local();
    let mut forest = global_forest().lock().expect("no panicked flusher").clone();
    sort_forest(&mut forest);
    forest
}

fn sort_forest(forest: &mut [SpanNode]) {
    forest.sort_by_key(|s| s.name);
    for node in forest {
        sort_forest(&mut node.children);
    }
}

// ---------------------------------------------------------------------------
// routing-par hooks: attribute worker spans under the fork site's open span.

fn hook_fork() -> u64 {
    if !profiling_enabled() {
        return 0;
    }
    let path = COLLECTOR.with(|c| c.borrow().current_path());
    let mut paths = fork_paths().lock().expect("no panicked flusher");
    paths.push(path);
    paths.len() as u64 // 1-based: 0 means "profiling disabled at fork"
}

fn hook_worker_start(token: u64) {
    if token == 0 || !profiling_enabled() {
        return;
    }
    let path = {
        let paths = fork_paths().lock().expect("no panicked flusher");
        match paths.get(token as usize - 1) {
            Some(p) => p.clone(),
            None => return, // reset() raced the fork; skip attribution
        }
    };
    COLLECTOR.with(|c| c.borrow_mut().open_prefix(&path));
}

fn hook_worker_end() {
    // Flush whatever this worker recorded (cheap no-op when nothing was).
    flush_local();
}

/// Names the fork site for worker-panic attribution: the span path open at
/// the fork (e.g. `build/balls`) when profiling is on, `None` otherwise —
/// the executor then falls back to the caller's source location.
fn hook_fork_name() -> Option<String> {
    if !profiling_enabled() {
        return None;
    }
    let path = COLLECTOR.with(|c| c.borrow().current_path());
    if path.is_empty() {
        return None;
    }
    Some(path.join("/"))
}

fn install_par_hooks() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        routing_par::set_par_hooks(routing_par::ParHooks {
            fork: hook_fork,
            worker_start: hook_worker_start,
            worker_end: hook_worker_end,
            fork_name: hook_fork_name,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler state is process-global; tests that toggle it serialize on
    /// this lock so `cargo test`'s parallel threads cannot interleave.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_lock();
        reset();
        set_profiling(false);
        {
            let _s = span("invisible");
        }
        assert!(report().is_empty());
    }

    #[test]
    fn nested_spans_build_a_tree_with_counts() {
        let _guard = test_lock();
        reset();
        set_profiling(true);
        for _ in 0..3 {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        {
            let _other = span("another-root");
        }
        set_profiling(false);
        let forest = report();
        assert_eq!(forest.len(), 2);
        // Sorted by name: "another-root" < "outer".
        assert_eq!(forest[0].name, "another-root");
        assert_eq!(forest[0].count, 1);
        let outer = &forest[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.count, 3);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].count, 6);
        assert!(outer.total_ns >= outer.children[0].total_ns);
        assert!(outer.total_ms() >= 0.0);
        reset();
        assert!(report().is_empty());
    }

    #[test]
    fn span_scope_macro_times_the_rest_of_the_scope() {
        let _guard = test_lock();
        reset();
        set_profiling(true);
        {
            crate::span_scope!("macro-span");
            crate::span_scope!("nested-macro-span");
        }
        set_profiling(false);
        let forest = report();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name, "macro-span");
        assert_eq!(forest[0].children[0].name, "nested-macro-span");
        reset();
    }

    #[test]
    fn worker_spans_merge_under_the_fork_site_for_every_thread_count() {
        let _guard = test_lock();
        let mut structures = Vec::new();
        for threads in [1usize, 2, 4] {
            reset();
            set_profiling(true);
            {
                let _phase = span("phase");
                let out = routing_par::par_map_scratch_with(threads, 64, || (), |_, i| {
                    let _item = span("item");
                    i * 2
                });
                assert_eq!(out[10], 20);
            }
            set_profiling(false);
            let forest = report();
            assert_eq!(forest.len(), 1, "threads={threads}");
            assert_eq!(forest[0].name, "phase");
            assert_eq!(forest[0].children.len(), 1, "threads={threads}");
            let item = &forest[0].children[0];
            assert_eq!(item.name, "item");
            assert_eq!(item.count, 64, "threads={threads}");
            // Structure (names and counts) must be thread-count independent.
            structures.push((forest[0].name, forest[0].count, item.name, item.count));
        }
        assert!(structures.windows(2).all(|w| w[0] == w[1]));
        reset();
    }

    #[test]
    fn toggling_mid_span_does_not_corrupt_the_tree() {
        let _guard = test_lock();
        reset();
        set_profiling(false);
        let opened_disabled = span("never-recorded");
        set_profiling(true);
        drop(opened_disabled); // no-op: was inert at creation
        let opened_enabled = span("half-recorded");
        set_profiling(false);
        drop(opened_enabled); // still records: guard was armed at creation
        let forest = report();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name, "half-recorded");
        reset();
    }
}
