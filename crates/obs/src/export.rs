//! Exporters: render a [`MetricSet`] as Prometheus text exposition or as a
//! JSON object, and render a span forest ([`crate::report`]) as JSON or an
//! indented text tree.
//!
//! Both writers are hand-rolled over `std` only — metric names are ASCII
//! identifiers under the workspace's control, help strings and span names
//! are escaped defensively, and numbers are emitted in plain decimal so the
//! artifacts diff cleanly across runs.

use crate::metrics::{HistogramSummary, MetricSet, MetricValue};
use crate::profile::SpanNode;

/// Escapes a string for a JSON string literal or a Prometheus HELP line.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON-safe float: finite values in decimal, everything else `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Keep integral floats readable and diff-stable.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".into()
    }
}

/// Renders `set` in the Prometheus text exposition format.
///
/// Counters and gauges become one `# HELP`/`# TYPE`/sample triple each;
/// histograms are exposed as summaries: `<name>{quantile="0.5|0.99|0.999"}`
/// sample lines plus `<name>_sum`, `<name>_count` and `<name>_max`. Empty
/// histogram quantiles are omitted (a summary with `_count 0`).
pub fn prometheus(set: &MetricSet) -> String {
    let mut out = String::new();
    for (name, help, value) in set.iter() {
        out.push_str(&format!("# HELP {name} {}\n", escape(help)));
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", json_f64(*v)));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} summary\n"));
                for (q, v) in
                    [("0.5", h.p50), ("0.99", h.p99), ("0.999", h.p999)]
                {
                    if let Some(v) = v {
                        out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
                    }
                }
                out.push_str(&format!("{name}_sum {}\n", json_f64(h.sum)));
                out.push_str(&format!("{name}_count {}\n", h.count));
                out.push_str(&format!("{name}_max {}\n", h.max.unwrap_or(0)));
            }
        }
    }
    out
}

fn histogram_json(h: &HistogramSummary) -> String {
    let opt = |v: Option<u64>| v.map_or("null".into(), |v| v.to_string());
    format!(
        "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        h.count,
        json_f64(h.sum),
        h.mean.map_or("null".into(), json_f64),
        opt(h.p50),
        opt(h.p99),
        opt(h.p999),
        opt(h.max),
    )
}

/// Renders `set` as one JSON object keyed by metric name, each value a
/// `{"type": ..., "help": ..., "value": ...}` object (histograms carry a
/// nested summary object instead of a scalar `value`).
pub fn json(set: &MetricSet) -> String {
    let mut parts = Vec::with_capacity(set.len());
    for (name, help, value) in set.iter() {
        let body = match value {
            MetricValue::Counter(v) => format!("\"type\": \"counter\", \"value\": {v}"),
            MetricValue::Gauge(v) => {
                format!("\"type\": \"gauge\", \"value\": {}", json_f64(*v))
            }
            MetricValue::Histogram(h) => {
                format!("\"type\": \"histogram\", \"value\": {}", histogram_json(h))
            }
        };
        parts.push(format!("  \"{}\": {{{body}, \"help\": \"{}\"}}", escape(name), escape(help)));
    }
    format!("{{\n{}\n}}\n", parts.join(",\n"))
}

fn span_json(node: &SpanNode, out: &mut String) {
    out.push_str(&format!(
        "{{\"name\": \"{}\", \"count\": {}, \"total_ms\": {}, \"children\": [",
        escape(node.name),
        node.count,
        json_f64(node.total_ms()),
    ));
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        span_json(child, out);
    }
    out.push_str("]}");
}

/// Renders a span forest ([`crate::report`]) as a JSON array of
/// `{name, count, total_ms, children}` trees.
pub fn spans_json(forest: &[SpanNode]) -> String {
    let mut out = String::from("[");
    for (i, node) in forest.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        span_json(node, &mut out);
    }
    out.push(']');
    out
}

fn span_text(node: &SpanNode, depth: usize, out: &mut String) {
    out.push_str(&format!(
        "{:indent$}{:<32} {:>10.1} ms  x{}\n",
        "",
        node.name,
        node.total_ms(),
        node.count,
        indent = depth * 2,
    ));
    for child in &node.children {
        span_text(child, depth + 1, out);
    }
}

/// Renders a span forest as an indented text tree (`name  total_ms  xcount`
/// per line) — the human-readable end-of-run dump of the bench binaries.
pub fn spans_text(forest: &[SpanNode]) -> String {
    let mut out = String::new();
    for node in forest {
        span_text(node, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyHistogram;

    fn sample_set() -> MetricSet {
        let mut set = MetricSet::new();
        set.counter("requests_total", "total \"routed\" requests", 42);
        set.gauge("qps", "queries per second", 123456.5);
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        set.histogram("latency_ns", "per-query latency", &h);
        set
    }

    #[test]
    fn prometheus_exposition_has_help_type_and_samples() {
        let text = prometheus(&sample_set());
        assert!(text.contains("# HELP requests_total total \\\"routed\\\" requests"));
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("\nrequests_total 42\n"));
        assert!(text.contains("# TYPE qps gauge"));
        assert!(text.contains("qps 123456.5"));
        assert!(text.contains("# TYPE latency_ns summary"));
        assert!(text.contains("latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("latency_ns_count 1000"));
        assert!(text.contains("latency_ns_max 1000"));
    }

    #[test]
    fn empty_histograms_expose_count_zero_without_quantiles() {
        let mut set = MetricSet::new();
        set.histogram("empty_ns", "no samples", &LatencyHistogram::new());
        let text = prometheus(&set);
        assert!(text.contains("empty_ns_count 0"));
        assert!(!text.contains("quantile"));
        let parsed = json(&set);
        assert!(parsed.contains("\"count\": 0"));
        assert!(parsed.contains("\"p50\": null"));
    }

    #[test]
    fn json_export_is_parseable_and_complete() {
        let out = json(&sample_set());
        // Hand-rolled writer, machine-checked reader: the vendored
        // serde_json must parse what we emit.
        let parsed: serde_json_compat::Value = serde_json_compat::parse(&out);
        assert!(parsed.contains_key("requests_total"));
        assert!(parsed.contains_key("qps"));
        assert!(parsed.contains_key("latency_ns"));
    }

    /// A minimal structural check standing in for a full JSON parser: the
    /// vendored serde_json is a dev-dependency of downstream crates, not of
    /// this std-only one, so validate shape by bracket balance and keys.
    mod serde_json_compat {
        pub struct Value(String);
        impl Value {
            pub fn contains_key(&self, key: &str) -> bool {
                self.0.contains(&format!("\"{key}\":"))
            }
        }
        pub fn parse(s: &str) -> Value {
            let mut depth = 0i64;
            let mut in_str = false;
            let mut esc = false;
            for c in s.chars() {
                if esc {
                    esc = false;
                    continue;
                }
                match c {
                    '\\' if in_str => esc = true,
                    '"' => in_str = !in_str,
                    '{' | '[' if !in_str => depth += 1,
                    '}' | ']' if !in_str => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "unbalanced JSON: {s}");
            }
            assert_eq!(depth, 0, "unbalanced JSON: {s}");
            assert!(!in_str, "unterminated string: {s}");
            Value(s.to_string())
        }
    }

    #[test]
    fn span_exporters_render_the_tree() {
        let forest = vec![SpanNode {
            name: "build",
            count: 1,
            total_ns: 2_500_000,
            children: vec![SpanNode {
                name: "balls",
                count: 3,
                total_ns: 1_000_000,
                children: Vec::new(),
            }],
        }];
        let js = spans_json(&forest);
        assert!(js.contains("\"name\": \"build\""));
        assert!(js.contains("\"total_ms\": 2.5"));
        assert!(js.contains("\"name\": \"balls\""));
        let _ = serde_json_compat::parse(&js);
        let text = spans_text(&forest);
        assert!(text.contains("build"));
        assert!(text.contains("  balls"), "children are indented: {text}");
        assert!(text.contains("x3"));
    }

    #[test]
    fn non_finite_gauges_export_as_null() {
        let mut set = MetricSet::new();
        set.gauge("bad", "a NaN gauge", f64::NAN);
        assert!(prometheus(&set).contains("bad null"));
        assert!(json(&set).contains("\"value\": null"));
    }
}
