//! Workspace-wide telemetry for the compact-routing system: a hierarchical
//! **span profiler** for the preprocessing phases, a **metric registry** of
//! named counters/gauges/histograms for the query and serving paths, and
//! **exporters** (Prometheus text exposition + JSON artifacts) the
//! experiment binaries write their breakdowns through.
//!
//! # Design constraints
//!
//! * **std-only** — consistent with the workspace's vendored, offline
//!   dependency policy. No tracing/metrics/prometheus crates.
//! * **Disabled means free** — both the profiler and the metric counters
//!   are gated on one process-wide relaxed atomic load each. With
//!   telemetry off (the default), a [`span`] is a single load returning an
//!   inert guard and a [`Counter::inc`](metrics::Counter::inc) is a single
//!   load and a branch: zero allocation, zero locks, zero syscalls. The
//!   routed-query hot path stays allocation-free with this crate compiled
//!   in (pinned by `crates/bench/tests/alloc_guard.rs`).
//! * **Deterministic aggregation** — worker-thread span trees are merged
//!   into the caller's tree by name, producing the same tree *structure*
//!   and the same *counts* for every thread count (wall-clock attributions
//!   are timing measurements and naturally vary). The merge is wired into
//!   `routing-par` through function-pointer hooks ([`ParHooks`]
//!   registration happens on the first [`set_profiling`]`(true)`), so
//!   every `par_map_scratch` fan-out attributes its workers' spans under
//!   the span that was open at the fork site.
//!
//! [`ParHooks`]: routing_par::ParHooks
//!
//! # The three layers
//!
//! 1. [`profile`] — [`span("name")`](span) returns a scoped guard; nested
//!    guards build a tree per thread; [`report`] merges and returns the
//!    forest; [`reset`] clears it. The preprocessing code of every scheme
//!    (balls, landmark sampling, cluster searches, technique builds, TZ
//!    ladder levels, exact/spanner tables) is threaded with these spans,
//!    which is where the `BENCH_8.json` per-phase build breakdowns come
//!    from.
//! 2. [`metrics`] — [`Counter`] statics for the query
//!    path (routing phase taken, hops, header words), the serving layer
//!    (label-cache hits, epoch swaps, snapshot loads) and churn failure
//!    classes, listed in [`metrics::COUNTER_SERIES`]; plus
//!    [`MetricSet`], the gather-then-export snapshot
//!    a binary assembles from those counters and its own gauges and
//!    histograms.
//! 3. [`export`] — [`export::prometheus`] renders a `MetricSet` in the
//!    text exposition format (histograms as summaries with quantile
//!    labels); [`export::json`] renders the same set as a JSON object;
//!    [`export::spans_json`]/[`export::spans_text`] render a span forest.
//!
//! The [`LatencyHistogram`] (HDR-style log-linear, mergeable) lives here
//! too — promoted out of `routing-serve`, which re-exports it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod latency;
pub mod metrics;
pub mod profile;

pub use latency::LatencyHistogram;
pub use metrics::{counters, metrics_enabled, set_metrics, Counter, MetricSet, MetricValue};
pub use profile::{
    flush_local, profiling_enabled, report, reset, set_profiling, span, Span, SpanNode,
};
