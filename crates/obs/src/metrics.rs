//! The metric registry: process-wide named counters for the query, serving
//! and churn paths, plus [`MetricSet`] — the gather-then-export snapshot a
//! binary assembles before handing it to [`crate::export`].
//!
//! # Gating
//!
//! Counters are gated on one process-wide relaxed atomic flag
//! ([`set_metrics`]); with metrics disabled (the default) an
//! [`Counter::inc`] is a single relaxed load and a branch — no RMW, no
//! allocation — so the routed-query hot path is unaffected by this crate
//! being compiled in. Enabled, an increment is one relaxed `fetch_add`.
//!
//! # Well-known series
//!
//! The counters every instrumented crate increments live in [`counters`]
//! and are listed (name, help, reference) in [`COUNTER_SERIES`], which is
//! what [`MetricSet::gather`] snapshots. Keeping the list static means a
//! disabled-telemetry process never allocates a registry, and an exporter
//! always emits every series — a counter that never fired exports as `0`
//! instead of silently missing (the CI smoke job greps for exactly this).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::latency::LatencyHistogram;

static METRICS: AtomicBool = AtomicBool::new(false);

/// Whether metric counters are recording — one relaxed load.
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS.load(Ordering::Relaxed)
}

/// Turns metric recording on or off process-wide.
pub fn set_metrics(on: bool) {
    METRICS.store(on, Ordering::Relaxed);
}

/// A monotonically increasing counter, gated on [`metrics_enabled`].
///
/// `const`-constructible so every well-known series is a `static` with no
/// registration step and no allocation.
#[derive(Debug)]
pub struct Counter {
    bits: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter { bits: AtomicU64::new(0) }
    }

    /// Adds `n` when metrics are enabled; a load and a branch otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            self.bits.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one when metrics are enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.bits.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero (experiment harnesses isolating runs).
    pub fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// The workspace's well-known counters. Incremented from the instrumented
/// crates; exported by every binary through [`MetricSet::gather`].
pub mod counters {
    use super::Counter;

    /// Routed queries completed (delivered) by the simulator hot paths.
    pub static ROUTING_QUERIES: Counter = Counter::new();
    /// Edges traversed across all completed routed queries.
    pub static ROUTING_HOPS: Counter = Counter::new();
    /// Sum over completed queries of the largest in-flight header, in
    /// `O(log n)`-bit words.
    pub static ROUTING_HEADER_WORDS: Counter = Counter::new();
    /// Queries whose header was resolved directly inside the source's
    /// vicinity/ball (no pivot involved).
    pub static ROUTING_PHASE_DIRECT: Counter = Counter::new();
    /// Queries routed via a pivot/landmark/color representative.
    pub static ROUTING_PHASE_TO_PIVOT: Counter = Counter::new();
    /// Queries routed down a shortest-path tree (or intra-set sequence)
    /// after reaching their pivot.
    pub static ROUTING_PHASE_TREE: Counter = Counter::new();
    /// Batched-serving label-cache hits (a destination run reused the
    /// previous erased label).
    pub static SERVE_LABEL_CACHE_HITS: Counter = Counter::new();
    /// Batched-serving label-cache misses (a fresh label was erased).
    pub static SERVE_LABEL_CACHE_MISSES: Counter = Counter::new();
    /// Epoch swaps: snapshots published through an `EpochCell`.
    pub static SERVE_EPOCH_SWAPS: Counter = Counter::new();
    /// Snapshot loads from an `EpochCell` (one per served sub-batch).
    pub static SERVE_SNAPSHOT_LOADS: Counter = Counter::new();
    /// Churn failures: forwards on ports that no longer exist.
    pub static CHURN_FAIL_INVALID_PORT: Counter = Counter::new();
    /// Churn failures: deliveries at the wrong vertex.
    pub static CHURN_FAIL_WRONG_DELIVERY: Counter = Counter::new();
    /// Churn failures: messages that looped into the hop budget.
    pub static CHURN_FAIL_HOP_BUDGET: Counter = Counter::new();
    /// Churn failures: messages forwarded into vertices unknown to the
    /// scheme.
    pub static CHURN_FAIL_UNKNOWN_VERTEX: Counter = Counter::new();
    /// Churn failures: internal scheme errors on stale state.
    pub static CHURN_FAIL_SCHEME_ERROR: Counter = Counter::new();
    /// Target-bounded (early-exit) Dijkstra searches run by the build
    /// phases in place of full per-source searches.
    pub static BUILD_EARLY_EXIT_SEARCHES: Counter = Counter::new();
    /// Vertices settled by the target-bounded build searches — divide by
    /// `build_early_exit_searches_total` for the mean settled frontier,
    /// compare against `n` for the per-source work the early exit saved.
    pub static BUILD_SETTLED_VERTICES: Counter = Counter::new();
    /// Defensive frontier resumes: a sequence construction probed a vertex
    /// beyond the settled frontier and the search was resumed to cover it
    /// (expected to stay at zero — targets settle their own path vertices).
    pub static BUILD_FRONTIER_RESUMES: Counter = Counter::new();
}

/// Every well-known counter as `(series name, help text, counter)`, in
/// export order. Series names follow the Prometheus `*_total` convention.
pub static COUNTER_SERIES: &[(&str, &str, &Counter)] = &[
    (
        "routing_queries_total",
        "Routed queries completed by the simulator hot paths",
        &counters::ROUTING_QUERIES,
    ),
    ("routing_hops_total", "Edges traversed across completed queries", &counters::ROUTING_HOPS),
    (
        "routing_header_words_total",
        "Sum over completed queries of the largest in-flight header words",
        &counters::ROUTING_HEADER_WORDS,
    ),
    (
        "routing_phase_direct_total",
        "Queries resolved directly inside the source vicinity",
        &counters::ROUTING_PHASE_DIRECT,
    ),
    (
        "routing_phase_to_pivot_total",
        "Queries routed via a pivot/landmark/color representative",
        &counters::ROUTING_PHASE_TO_PIVOT,
    ),
    (
        "routing_phase_tree_total",
        "Queries routed down a tree or intra-set sequence after the pivot",
        &counters::ROUTING_PHASE_TREE,
    ),
    (
        "serve_label_cache_hits_total",
        "Batched-serving label-cache hits (dest run reused the erased label)",
        &counters::SERVE_LABEL_CACHE_HITS,
    ),
    (
        "serve_label_cache_misses_total",
        "Batched-serving label-cache misses (fresh label erasure)",
        &counters::SERVE_LABEL_CACHE_MISSES,
    ),
    (
        "serve_epoch_swaps_total",
        "Snapshots published through an EpochCell",
        &counters::SERVE_EPOCH_SWAPS,
    ),
    (
        "serve_snapshot_loads_total",
        "Snapshot loads from an EpochCell (one per served sub-batch)",
        &counters::SERVE_SNAPSHOT_LOADS,
    ),
    (
        "churn_fail_invalid_port_total",
        "Churn failures: forwards on ports that no longer exist",
        &counters::CHURN_FAIL_INVALID_PORT,
    ),
    (
        "churn_fail_wrong_delivery_total",
        "Churn failures: deliveries at the wrong vertex",
        &counters::CHURN_FAIL_WRONG_DELIVERY,
    ),
    (
        "churn_fail_hop_budget_total",
        "Churn failures: messages that looped into the hop budget",
        &counters::CHURN_FAIL_HOP_BUDGET,
    ),
    (
        "churn_fail_unknown_vertex_total",
        "Churn failures: messages forwarded into unknown vertices",
        &counters::CHURN_FAIL_UNKNOWN_VERTEX,
    ),
    (
        "churn_fail_scheme_error_total",
        "Churn failures: internal scheme errors on stale state",
        &counters::CHURN_FAIL_SCHEME_ERROR,
    ),
    (
        "build_early_exit_searches_total",
        "Target-bounded (early-exit) Dijkstra searches run by the build phases",
        &counters::BUILD_EARLY_EXIT_SEARCHES,
    ),
    (
        "build_settled_vertices_total",
        "Vertices settled by the target-bounded build searches",
        &counters::BUILD_SETTLED_VERTICES,
    ),
    (
        "build_frontier_resumes_total",
        "Sequence constructions that resumed a search past its settled frontier",
        &counters::BUILD_FRONTIER_RESUMES,
    ),
];

/// Resets every well-known counter (harnesses isolating measurement runs).
pub fn reset_counters() {
    for (_, _, c) in COUNTER_SERIES {
        c.reset();
    }
}

/// A fixed-quantile summary of a [`LatencyHistogram`], the exportable form
/// of a histogram metric.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples (may lose precision past 2^53; exact inside).
    pub sum: f64,
    /// Mean sample, when non-empty.
    pub mean: Option<f64>,
    /// Median (p50).
    pub p50: Option<u64>,
    /// 99th percentile.
    pub p99: Option<u64>,
    /// 99.9th percentile.
    pub p999: Option<u64>,
    /// Exact maximum.
    pub max: Option<u64>,
}

impl From<&LatencyHistogram> for HistogramSummary {
    fn from(h: &LatencyHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            sum: h.sum() as f64,
            mean: h.mean(),
            p50: h.quantile(0.5),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max(),
        }
    }
}

/// One exportable metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone counter reading.
    Counter(u64),
    /// A point-in-time gauge.
    Gauge(f64),
    /// A histogram summary (exported as Prometheus summary quantiles).
    Histogram(HistogramSummary),
}

/// An ordered snapshot of named metrics, ready for
/// [`crate::export::prometheus`] / [`crate::export::json`].
///
/// Binaries build one per run (or per round, for churn): start from
/// [`MetricSet::gather`] to pick up every well-known counter, then attach
/// run-level gauges (qps, wall-clock) and histograms (latency).
#[derive(Debug, Clone, Default)]
pub struct MetricSet {
    entries: BTreeMap<String, (String, MetricValue)>,
}

impl MetricSet {
    /// An empty set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// A set holding the current value of every well-known counter in
    /// [`COUNTER_SERIES`] — zeros included, so no series ever goes
    /// missing from an exposition.
    pub fn gather() -> Self {
        let mut set = MetricSet::new();
        for (name, help, counter) in COUNTER_SERIES {
            set.counter(name, help, counter.get());
        }
        set
    }

    /// Inserts (or overwrites) a counter reading.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.entries.insert(name.into(), (help.into(), MetricValue::Counter(value)));
    }

    /// Inserts (or overwrites) a gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.entries.insert(name.into(), (help.into(), MetricValue::Gauge(value)));
    }

    /// Inserts (or overwrites) a histogram summary.
    pub fn histogram(&mut self, name: &str, help: &str, h: &LatencyHistogram) {
        self.entries.insert(name.into(), (help.into(), MetricValue::Histogram(h.into())));
    }

    /// Iterates `(name, help, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &MetricValue)> {
        self.entries.iter().map(|(name, (help, value))| (name.as_str(), help.as_str(), value))
    }

    /// Number of metrics in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_inert_until_enabled() {
        // This test owns a private counter, so parallel tests cannot race
        // its value; the global flag is toggled back immediately.
        let c = Counter::new();
        set_metrics(false);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        set_metrics(true);
        c.inc();
        c.add(2);
        set_metrics(false);
        assert_eq!(c.get(), 3);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(Counter::default().get(), 0);
    }

    #[test]
    fn series_table_is_complete_and_unique() {
        assert!(COUNTER_SERIES.len() >= 15);
        for (i, (name, help, _)) in COUNTER_SERIES.iter().enumerate() {
            assert!(name.ends_with("_total"), "{name} should follow the *_total convention");
            assert!(!help.is_empty());
            assert!(
                COUNTER_SERIES[..i].iter().all(|(n, _, _)| n != name),
                "duplicate series {name}"
            );
        }
    }

    #[test]
    fn gather_exports_every_series_even_at_zero() {
        let set = MetricSet::gather();
        assert_eq!(set.len(), COUNTER_SERIES.len());
        assert!(!set.is_empty());
        for (name, _, _) in COUNTER_SERIES {
            assert!(set.iter().any(|(n, _, _)| n == *name), "{name} missing from gather()");
        }
    }

    #[test]
    fn metric_set_holds_all_three_kinds() {
        let mut set = MetricSet::new();
        set.counter("c_total", "a counter", 7);
        set.gauge("g", "a gauge", 2.5);
        let mut h = LatencyHistogram::new();
        h.record(100);
        h.record(200);
        set.histogram("h_ns", "a histogram", &h);
        assert_eq!(set.len(), 3);
        let kinds: Vec<&str> = set
            .iter()
            .map(|(_, _, v)| match v {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            })
            .collect();
        // BTreeMap order: c_total, g, h_ns.
        assert_eq!(kinds, vec!["counter", "gauge", "histogram"]);
        let (_, _, v) = set.iter().nth(2).unwrap();
        match v {
            MetricValue::Histogram(s) => {
                assert_eq!(s.count, 2);
                assert_eq!(s.sum, 300.0);
                assert_eq!(s.max, Some(200));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
