//! A fixed-size log-linear latency histogram (HDR-style, two significant
//! hex digits): constant-time recording, mergeable across shards, and
//! quantile queries with a bounded relative error of `1/16`.
//!
//! Promoted out of `routing-serve` (which re-exports it for compatibility)
//! so the churn and bench harnesses can histogram through the same type,
//! and so the exporters in [`crate::export`] have one histogram shape to
//! render.
//!
//! Per-query latencies on the serving hot path span five orders of
//! magnitude (sub-microsecond cache hits to multi-millisecond cold routes),
//! so a linear histogram is either huge or useless. This one keeps 16
//! linear sub-buckets per power of two: every recorded value lands in a
//! bucket whose width is at most `1/16` of its lower bound, which is more
//! resolution than wall-clock jitter justifies. The whole histogram is a
//! flat `u64` array — recording is two shifts and an increment, merging is
//! element-wise addition (the engine merges per-shard histograms into the
//! aggregate tail-latency report). All accumulators saturate instead of
//! wrapping, so a merge of adversarial inputs degrades gracefully rather
//! than panicking in release builds.

/// Linear sub-buckets per octave; also the size of the initial exact range.
const SUB: usize = 16;
/// log2(SUB): values below `SUB` are recorded exactly.
const SUB_BITS: u32 = 4;
/// Octaves above the exact range (`u64` values up to `2^63`).
const OCTAVES: usize = 60;
/// Total bucket count.
const BUCKETS: usize = SUB + OCTAVES * SUB;

/// A mergeable log-linear histogram of `u64` samples (nanoseconds, by
/// convention, but any scale works).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: Box::new([0; BUCKETS]), total: 0, sum: 0, max: 0 }
    }

    /// The bucket index of `v`: exact below [`SUB`], log-linear above.
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let octave = (msb - SUB_BITS) as usize;
        let offset = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (SUB + octave * SUB + offset).min(BUCKETS - 1)
    }

    /// The largest value that maps to bucket `idx` (the value a quantile
    /// query reports for samples in that bucket).
    fn upper_bound(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let octave = ((idx - SUB) / SUB) as u32;
        let offset = ((idx - SUB) % SUB) as u128;
        // The bucket covers [ (16+offset) << octave, (16+offset+1) << octave );
        // the top bucket's bound exceeds u64, so compute wide and saturate.
        let bound = ((SUB as u128 + offset + 1) << octave) - 1;
        bound.min(u64::MAX as u128) as u64
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v` in one constant-time update.
    ///
    /// All accumulators saturate: a count that would overflow `u64` pins at
    /// `u64::MAX`, and the running sum pins at `u128::MAX` — quantiles and
    /// the maximum stay exact, only `mean` degrades (this is the designed
    /// behavior for pathological inputs, pinned by the saturation tests).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let slot = &mut self.counts[Self::index(v)];
        *slot = slot.saturating_add(n);
        self.total = self.total.saturating_add(n);
        self.sum = self.sum.saturating_add((v as u128).saturating_mul(n as u128));
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self` (exact: bucket counts add,
    /// saturating on overflow).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples (exact until saturation).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the recorded samples (exact, from the running sum), or
    /// `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        Some(self.sum as f64 / self.total as f64)
    }

    /// The largest recorded sample (exact), or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.total == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the target sample — within `1/16` relative error of the true
    /// order statistic, clamped to the exact maximum. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The rank of the target sample, 1-based; q=0 hits the first.
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= target {
                return Some(Self::upper_bound(idx).min(self.max));
            }
        }
        Some(self.max)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 3, 15, 15, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
        assert_eq!(h.max(), Some(15));
        assert_eq!(h.mean(), Some(51.0 / 7.0));
    }

    #[test]
    fn quantiles_are_within_one_sixteenth() {
        let mut h = LatencyHistogram::new();
        // 1..=100_000: the true q-quantile is q * 100_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let want = q * 100_000.0;
            let got = h.quantile(q).unwrap() as f64;
            assert!(
                got >= want * (1.0 - 1.0 / 16.0) && got <= want * (1.0 + 1.0 / 8.0),
                "q={q}: got {got}, want ~{want}"
            );
        }
        assert_eq!(h.quantile(1.0), Some(100_000));
    }

    #[test]
    fn quantile_accuracy_on_a_skewed_distribution() {
        // Geometric-ish tail: 10^k appearing 10^(5-k) times. The exact
        // order statistics are computable by hand from the cumulative
        // counts; each reported quantile must stay within the 1/16 bucket
        // error of the true sample value.
        let mut h = LatencyHistogram::new();
        for (v, n) in [(10u64, 100_000u64), (100, 10_000), (1_000, 1_000), (10_000, 100), (100_000, 10)] {
            h.record_n(v, n);
        }
        assert_eq!(h.count(), 111_110);
        // Ranks: 1..=100_000 -> 10; ..=110_000 -> 100; ..=111_000 -> 1_000; ...
        for (q, want) in [(0.5, 10u64), (0.9, 10), (0.95, 100), (0.999, 1_000), (1.0, 100_000)] {
            let got = h.quantile(q).unwrap();
            let lo = want - want / 16;
            let hi = want + want / 8;
            assert!(got >= lo && got <= hi, "q={q}: got {got}, want ~{want}");
        }
        let mean = h.mean().unwrap();
        let true_mean = (10.0 * 1e5 + 100.0 * 1e4 + 1e3 * 1e3 + 1e4 * 1e2 + 1e5 * 10.0) / 111_110.0;
        assert!((mean - true_mean).abs() < 1e-6, "mean {mean} vs {true_mean}");
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = LatencyHistogram::new();
        let mut loop_ = LatencyHistogram::new();
        for (v, n) in [(0u64, 3u64), (17, 5), (9_000, 2), (1 << 40, 4)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                loop_.record(v);
            }
        }
        bulk.record_n(123, 0); // no-op
        assert_eq!(bulk.count(), loop_.count());
        assert_eq!(bulk.sum(), loop_.sum());
        assert_eq!(bulk.max(), loop_.max());
        for q in [0.0, 0.3, 0.5, 0.9, 1.0] {
            assert_eq!(bulk.quantile(q), loop_.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [7u64, 130, 9_000, 1 << 40] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 250_000, u64::MAX / 2] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.mean(), both.mean());
        assert_eq!(a.max(), both.max());
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    /// Structural equality strong enough for the algebra tests: every
    /// observable (count, sum, max, a quantile sweep) must agree.
    fn assert_equivalent(x: &LatencyHistogram, y: &LatencyHistogram, what: &str) {
        assert_eq!(x.count(), y.count(), "{what}: count");
        assert_eq!(x.sum(), y.sum(), "{what}: sum");
        assert_eq!(x.max(), y.max(), "{what}: max");
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert_eq!(x.quantile(q), y.quantile(q), "{what}: quantile {q}");
        }
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let mk = |values: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 50, 3_000, 1 << 30]);
        let b = mk(&[2, 2, 900_000]);
        let c = mk(&[u64::MAX, 0, 17, 17, 17]);

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_equivalent(&ab, &ba, "commutativity");

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_equivalent(&ab_c, &a_bc, "associativity");
    }

    #[test]
    fn huge_values_do_not_overflow_the_bucket_table() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1 << 62);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        // Quantiles clamp to the exact recorded maximum.
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn sum_saturates_at_u128_max_instead_of_wrapping() {
        let mut h = LatencyHistogram::new();
        // u64::MAX * u64::MAX samples: the count saturates at u64::MAX and
        // the sum at u128::MAX - (no panic, no wrap, max exact).
        h.record_n(u64::MAX, u64::MAX);
        let first_sum = h.sum();
        assert_eq!(first_sum, (u64::MAX as u128) * (u64::MAX as u128));
        h.record_n(u64::MAX, u64::MAX);
        h.record_n(u64::MAX, u64::MAX);
        assert_eq!(h.count(), u64::MAX, "count saturates");
        assert_eq!(h.sum(), u128::MAX, "sum saturates");
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(0.5), Some(u64::MAX));
        // Merging two saturated histograms also saturates instead of
        // wrapping (mean degrades gracefully; quantiles stay exact).
        let other = h.clone();
        h.merge(&other);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.sum(), u128::MAX);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        assert!(h.mean().unwrap() > 0.0);
    }

    #[test]
    fn debug_is_compact() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        let s = format!("{h:?}");
        assert!(s.contains("count: 1"), "{s}");
    }
}
