//! Cross-crate integration tests: every scheme of the paper plus the
//! baselines, evaluated end to end through the shared simulator on several
//! graph families, checking the paper's stretch bounds and the relative
//! table-size ordering that Table 1 claims.

use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_baselines::{ExactScheme, TzOracle, TzRoutingScheme};
use routing_core::{Params, SchemeFivePlusEps, SchemeThreePlusEps, SchemeTwoPlusEps};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{self, Family, WeightModel};
use routing_graph::{Graph, VertexId};
use routing_model::eval::{evaluate, PairSelection};
use routing_model::{simulate, RoutingScheme};

fn weighted_instance(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generators::erdos_renyi(n, 8.0 / n as f64, WeightModel::Uniform { lo: 1, hi: 24 }, &mut rng)
}

#[test]
fn all_schemes_deliver_every_message_on_every_family() {
    let eps = 0.5;
    let params = Params::with_epsilon(eps);
    for family in Family::ALL {
        let mut rng = StdRng::seed_from_u64(5);
        let unweighted = family.generate(120, WeightModel::Unit, &mut rng);
        let weighted = family.generate(120, WeightModel::Uniform { lo: 1, hi: 10 }, &mut rng);
        let exact_u = DistanceMatrix::new(&unweighted);
        let exact_w = DistanceMatrix::new(&weighted);

        let thm10 = SchemeTwoPlusEps::build(&unweighted, &params, &mut rng).unwrap();
        let thm11 = SchemeFivePlusEps::build(&weighted, &params, &mut rng).unwrap();
        let warm = SchemeThreePlusEps::build(&weighted, &params, &mut rng).unwrap();

        let r10 = evaluate(&unweighted, &thm10, &exact_u, PairSelection::Sampled(500), &mut rng)
            .expect("thm10 routes everything");
        assert!(r10.stretch.check_affine_bound(2.0 + 2.0 * eps, 1.0), "{}", family.name());

        let r11 = evaluate(&weighted, &thm11, &exact_w, PairSelection::Sampled(500), &mut rng)
            .expect("thm11 routes everything");
        assert!(r11.stretch.check_affine_bound(5.0 + 3.0 * eps, 0.0), "{}", family.name());

        let rw = evaluate(&weighted, &warm, &exact_w, PairSelection::Sampled(500), &mut rng)
            .expect("warm-up routes everything");
        assert!(rw.stretch.check_affine_bound(3.0 + 2.0 * eps, 0.0), "{}", family.name());
    }
}

#[test]
fn table_size_ordering_matches_table_1() {
    // The paper's point: stretch 5+eps is achievable with tables well below
    // the sqrt(n) barrier. Check the measured ordering on a moderately sized
    // instance: thm11 tables < warm-up tables < exact tables, and thm10
    // (2+eps,1) pays more space than warm-up for its better stretch.
    let g = weighted_instance(300, 11);
    let unweighted = {
        let mut rng = StdRng::seed_from_u64(11);
        generators::erdos_renyi(300, 8.0 / 300.0, WeightModel::Unit, &mut rng)
    };
    let params = Params::with_epsilon(0.5);
    let mut rng = StdRng::seed_from_u64(12);

    let thm11 = SchemeFivePlusEps::build(&g, &params, &mut rng).unwrap();
    let warm = SchemeThreePlusEps::build(&g, &params, &mut rng).unwrap();
    let thm10 = SchemeTwoPlusEps::build(&unweighted, &params, &mut rng).unwrap();
    let exact = ExactScheme::build(&g).unwrap();

    let mean = |f: &dyn Fn(VertexId) -> usize| -> f64 {
        g.vertices().map(f).sum::<usize>() as f64 / g.n() as f64
    };
    let m11 = mean(&|v| thm11.table_words(v));
    let mwarm = mean(&|v| warm.table_words(v));
    let m10 = mean(&|v| thm10.table_words(v));
    let mexact = mean(&|v| exact.table_words(v));

    assert!(m11 < mwarm, "thm11 mean table {m11} should be below warm-up {mwarm}");
    assert!(mwarm < m10, "warm-up mean table {mwarm} should be below thm10 {m10}");
    assert!(m11 < mexact, "compact tables must beat full tables");
}

#[test]
fn tz_baseline_and_oracle_agree_with_paper_claims() {
    let g = weighted_instance(150, 21);
    let exact = DistanceMatrix::new(&g);
    let mut rng = StdRng::seed_from_u64(22);
    let scheme = TzRoutingScheme::build(&g, 2, &mut rng).unwrap();
    let oracle = TzOracle::new(scheme.hierarchy().clone());
    for u in g.vertices().step_by(7) {
        for v in g.vertices().step_by(5) {
            if u == v {
                continue;
            }
            let d = exact.dist(u, v).unwrap();
            let routed = simulate(&g, &scheme, u, v).unwrap().weight;
            let est = oracle.query(u, v);
            assert!(routed <= 3 * d, "tz k=2 stretch violated");
            assert!(est >= d && est <= 3 * d, "tz oracle stretch violated");
            // The routed path can never beat the exact distance.
            assert!(routed >= d);
        }
    }
}

#[test]
fn headers_stay_within_the_papers_budget() {
    // Lemma 7/8 headers are O((1/eps) log n) words; check they do not grow
    // with n beyond a generous constant at fixed eps.
    let params = Params::with_epsilon(0.5);
    for (n, seed) in [(120usize, 31u64), (240, 32)] {
        let g = weighted_instance(n, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SchemeFivePlusEps::build(&g, &params, &mut rng).unwrap();
        let mut max_header = 0usize;
        for u in g.vertices().step_by(9) {
            for v in g.vertices().step_by(11) {
                if u == v {
                    continue;
                }
                let out = simulate(&g, &scheme, u, v).unwrap();
                max_header = max_header.max(out.max_header_words);
            }
        }
        // b = 5 for eps=0.5; sequences are at most 2b log(nD) + 2 entries of
        // 2 words each; allow slack for the phase tag and tree labels.
        assert!(max_header < 400, "header grew unexpectedly: {max_header} words at n={n}");
    }
}

#[test]
fn facade_prelude_builds_and_routes() {
    use compact_routing::prelude::*;
    let mut rng = StdRng::seed_from_u64(41);
    let g = generators::cycle(60);
    let scheme = SchemeThreePlusEps::build(&g, &Params::default(), &mut rng).unwrap();
    let out = simulate(&g, &scheme, VertexId(0), VertexId(30)).unwrap();
    assert_eq!(out.destination(), VertexId(30));
    assert!(out.weight >= 30);
}

#[test]
fn registry_builds_route_and_honour_the_naming_invariant() {
    use compact_routing::registry::SchemeRegistry;
    use routing_core::BuildContext;

    // Unweighted instance: valid input for every registered scheme.
    let mut rng = StdRng::seed_from_u64(51);
    let g = generators::erdos_renyi(100, 0.08, WeightModel::Unit, &mut rng);
    let exact = DistanceMatrix::new(&g);
    let registry = SchemeRegistry::with_defaults();
    assert_eq!(
        registry.names(),
        vec![
            "warmup", "thm10", "thm11", "tz2", "tz3", "exact", "spanner", "thm13", "thm15",
            "thm16k3"
        ],
        "the CLI scheme names are a documented, ordered contract"
    );

    let ctx = BuildContext { seed: 52, threads: 1, ..BuildContext::default() };
    let mut rng = StdRng::seed_from_u64(53);
    for key in registry.names() {
        let scheme = registry.build(key, &g, &ctx).unwrap_or_else(|e| panic!("{key}: {e}"));
        assert_eq!(scheme.name(), key, "scheme name must equal its registry key");
        // Route a sample through the erased scheme and sanity-check against
        // the exact distances (every scheme in the registry has stretch
        // <= 7 at these parameters).
        let report = evaluate(&g, scheme.as_ref(), &exact, PairSelection::Sampled(150), &mut rng)
            .unwrap_or_else(|e| panic!("{key} failed to route: {e}"));
        assert_eq!(report.scheme, key);
        assert!(
            report.stretch.max_multiplicative().unwrap_or(1.0) <= 7.0 + 1.0,
            "{key} exceeded every registered stretch bound"
        );
    }
}
