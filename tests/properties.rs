//! Property-based integration tests (proptest): invariants of the substrates
//! and the paper's stretch guarantees on randomly generated graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use routing_churn::{ChurnPlan, ChurnPlanConfig, RemovalMode};
use routing_core::{Params, SchemeFivePlusEps, SchemeThreePlusEps};
use routing_graph::apsp::DistanceMatrix;
use routing_graph::generators::{self, WeightModel};
use routing_graph::mutate::apply_events;
use routing_graph::shortest_path::dijkstra;
use routing_graph::{Graph, SampledDistances, VertexId};
use routing_model::simulate;
use routing_vicinity::BallTable;

fn arb_graph() -> impl Strategy<Value = (Graph, u64)> {
    (30usize..70, 1u64..1_000, 1u64..20).prop_map(|(n, seed, max_w)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(
            n,
            10.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: max_w },
            &mut rng,
        );
        (g, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Property 1 of the paper: ball membership is preserved along shortest
    /// paths, for every ball size.
    #[test]
    fn property_one_holds((g, _seed) in arb_graph(), ell in 3usize..20) {
        let balls = BallTable::build(&g, ell);
        for u in g.vertices().step_by(5) {
            let spt = dijkstra(&g, u);
            for &(v, _) in balls.ball(u).members() {
                if v == u { continue; }
                for w in spt.path_to(v).unwrap() {
                    prop_assert!(balls.contains(w, v));
                }
            }
        }
    }

    /// Triangle inequality and symmetry of the exact distance matrix (sanity
    /// of the ground truth every stretch measurement relies on).
    #[test]
    fn distance_matrix_is_a_metric((g, _seed) in arb_graph()) {
        let m = DistanceMatrix::new(&g);
        let vs: Vec<VertexId> = g.vertices().collect();
        for &a in vs.iter().step_by(7) {
            for &b in vs.iter().step_by(5) {
                prop_assert_eq!(m.dist(a, b), m.dist(b, a));
                for &c in vs.iter().step_by(11) {
                    let ab = m.dist(a, b).unwrap();
                    let bc = m.dist(b, c).unwrap();
                    let ac = m.dist(a, c).unwrap();
                    prop_assert!(ac <= ab + bc);
                }
            }
        }
    }

    /// The warm-up scheme never exceeds (3+2eps)·d on any sampled pair of any
    /// random weighted graph.
    #[test]
    fn warmup_stretch_never_violated((g, seed) in arb_graph()) {
        let eps = 0.5;
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SchemeThreePlusEps::build(&g, &Params::with_epsilon(eps), &mut rng).unwrap();
        let exact = DistanceMatrix::new(&g);
        for u in g.vertices().step_by(6) {
            for v in g.vertices().step_by(4) {
                if u == v { continue; }
                let out = simulate(&g, &scheme, u, v).unwrap();
                let d = exact.dist(u, v).unwrap();
                prop_assert!(out.weight as f64 <= (3.0 + 2.0 * eps) * d as f64 + 1e-9);
            }
        }
    }

    /// The (5+eps) scheme never exceeds (5+3eps)·d on any sampled pair.
    #[test]
    fn five_plus_eps_stretch_never_violated((g, seed) in arb_graph()) {
        let eps = 1.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SchemeFivePlusEps::build(&g, &Params::with_epsilon(eps), &mut rng).unwrap();
        let exact = DistanceMatrix::new(&g);
        for u in g.vertices().step_by(6) {
            for v in g.vertices().step_by(4) {
                if u == v { continue; }
                let out = simulate(&g, &scheme, u, v).unwrap();
                let d = exact.dist(u, v).unwrap();
                prop_assert!(out.weight as f64 <= (5.0 + 3.0 * eps) * d as f64 + 1e-9);
            }
        }
    }

    /// CSR invariants of a churned graph: every adjacency entry is
    /// port-consistent and symmetric with identical weights in both
    /// directions, and no surviving edge dangles into a dead vertex.
    #[test]
    fn churned_graph_preserves_csr_invariants(
        (g, seed) in arb_graph(),
        remove_pct in 0usize..30,
        mode_idx in 0usize..3,
    ) {
        let cfg = ChurnPlanConfig {
            rounds: 3,
            remove_frac: remove_pct as f64 / 100.0,
            add_frac: 0.5,
            edge_remove_frac: 0.05,
            edge_add_frac: 0.05,
            mode: RemovalMode::ALL[mode_idx],
            seed,
        };
        let plan = ChurnPlan::generate(&g, &cfg);
        let mut graph = g.clone();
        let mut alive: Vec<bool> = vec![true; g.n()];
        for round in &plan.rounds {
            let m = apply_events(&graph, Some(&alive), round).unwrap();
            graph = m.graph;
            alive = m.alive;

            prop_assert_eq!(graph.n(), alive.len());
            let mut directed_entries = 0usize;
            for u in graph.vertices() {
                // Dead vertices must be fully isolated.
                if !alive[u.index()] {
                    prop_assert_eq!(graph.degree(u), 0);
                }
                for e in graph.edges(u) {
                    directed_entries += 1;
                    // No dangling edges into dead vertices.
                    prop_assert!(alive[e.to.index()], "edge ({u}, {}) dangles", e.to);
                    prop_assert!(e.to != u, "self loop at {u}");
                    // Port consistency: the port labelling round-trips.
                    prop_assert_eq!(graph.port_to(u, e.to), Some(e.port));
                    let back = graph.neighbor_at(u, e.port);
                    prop_assert_eq!(back.to, e.to);
                    prop_assert_eq!(back.weight, e.weight);
                    // Symmetry with equal weights.
                    prop_assert_eq!(graph.edge_weight(e.to, u), Some(e.weight));
                }
            }
            // CSR stores each undirected edge exactly twice.
            prop_assert_eq!(directed_entries, 2 * graph.m());
        }
    }

    /// A zero-churn plan generates no events and applying its (empty)
    /// rounds is the identity on the graph and the liveness mask.
    #[test]
    fn zero_event_churn_plan_is_identity((g, seed) in arb_graph()) {
        let cfg = ChurnPlanConfig {
            rounds: 2,
            remove_frac: 0.0,
            add_frac: 0.0,
            edge_remove_frac: 0.0,
            edge_add_frac: 0.0,
            mode: RemovalMode::Random,
            seed,
        };
        let plan = ChurnPlan::generate(&g, &cfg);
        prop_assert_eq!(plan.total_events(), 0);
        for round in &plan.rounds {
            let m = apply_events(&g, None, round).unwrap();
            prop_assert_eq!(&m.graph, &g);
            prop_assert!(m.alive.iter().all(|&a| a));
            prop_assert_eq!(m.stats.port_preservation(), 1.0);
        }
    }

    /// The sampled ground-truth oracle agrees **exactly** with the dense
    /// distance matrix on every pair — covered pairs via stored rows and
    /// uncovered pairs via its on-demand search path alike.
    #[test]
    fn sampled_oracle_matches_dense_matrix((g, seed) in arb_graph(), k in 1usize..16) {
        let matrix = DistanceMatrix::new(&g);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xface);
        let oracle = SampledDistances::sample(&g, k, &mut rng);
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(oracle.dist(u, v), matrix.dist(u, v),
                    "oracle disagrees with matrix on ({u}, {v})");
            }
        }
    }
}

/// Serializes the tests that flip the process-wide `routing_par` thread
/// count. Without this lock, libtest's concurrency could let one identity
/// test raise the global between another's `set_threads(1)` and its build —
/// both builds would then be parallel and a seq/par divergence could pass
/// undetected.
static THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Builds a scheme once with 1 worker thread and once with 4, from the same
/// seed, and asserts the results are indistinguishable: identical per-vertex
/// table/label word counts and identical routed paths (weight and hop count)
/// for every sampled pair. This is the bit-identity contract `routing_par`
/// documents: parallelism changes wall-clock only, never what gets built.
fn assert_threads_invariant<S, F>(g: &Graph, build: F)
where
    S: routing_model::RoutingScheme + Send + Sync,
    F: Fn() -> S,
{
    routing_par::set_threads(1);
    let seq = build();
    routing_par::set_threads(4);
    let par = build();
    routing_par::set_threads(routing_par::available_threads());
    for v in g.vertices() {
        assert_eq!(seq.table_words(v), par.table_words(v), "table words differ at {v}");
        assert_eq!(seq.label_words(v), par.label_words(v), "label words differ at {v}");
    }
    for u in g.vertices().step_by(7) {
        for v in g.vertices().step_by(5) {
            if u == v {
                continue;
            }
            let a = simulate(g, &seq, u, v).unwrap();
            let b = simulate(g, &par, u, v).unwrap();
            assert_eq!(a.weight, b.weight, "routed weight differs for {u}->{v}");
            assert_eq!(a.hops, b.hops, "hop count differs for {u}->{v}");
        }
    }
}

#[test]
fn parallel_and_sequential_scheme_builds_are_identical() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut gen_rng = StdRng::seed_from_u64(33);
    let g = generators::erdos_renyi(
        130,
        0.05,
        WeightModel::Uniform { lo: 1, hi: 8 },
        &mut gen_rng,
    );
    let params = Params::with_epsilon(0.5);
    assert_threads_invariant(&g, || {
        let mut rng = StdRng::seed_from_u64(7);
        SchemeThreePlusEps::build(&g, &params, &mut rng).unwrap()
    });
    assert_threads_invariant(&g, || {
        let mut rng = StdRng::seed_from_u64(7);
        SchemeFivePlusEps::build(&g, &params, &mut rng).unwrap()
    });
    assert_threads_invariant(&g, || {
        let mut rng = StdRng::seed_from_u64(7);
        routing_baselines::TzRoutingScheme::build(&g, 2, &mut rng).unwrap()
    });
}

#[test]
fn parallel_and_sequential_ground_truth_are_identical() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut gen_rng = StdRng::seed_from_u64(44);
    let g = generators::erdos_renyi(90, 0.07, WeightModel::Unit, &mut gen_rng);
    routing_par::set_threads(1);
    let seq = DistanceMatrix::new(&g);
    routing_par::set_threads(4);
    let par = DistanceMatrix::new(&g);
    routing_par::set_threads(routing_par::available_threads());
    for u in g.vertices() {
        for v in g.vertices() {
            assert_eq!(seq.dist(u, v), par.dist(u, v));
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel equivalence: the allocation-free search kernel (SearchScratch, the
// flat BallTable, the flat TZ bunches) must be bit-identical to the
// pre-refactor implementations kept in `routing_graph::reference`.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// One reused `SearchScratch` running an interleaved mix of full,
    /// bounded, multi-source and restricted searches must agree search by
    /// search with the pre-refactor allocating implementations — distances,
    /// parents, first hops, member order, radii and nearest-source labels.
    #[test]
    fn scratch_kernel_matches_reference_searches((g, seed) in arb_graph(), ell in 2usize..16) {
        use routing_graph::{reference, SearchScratch};
        let mut scratch = SearchScratch::for_graph(&g);
        let sources: Vec<VertexId> = g.vertices().step_by(9).collect();

        for u in g.vertices().step_by(5) {
            // Bounded ball search first, so the following full search must
            // overwrite its partial state via the epoch stamp.
            let radius = scratch.ball_into(&g, u, ell);
            let b = reference::ball_hashmap(&g, u, ell);
            prop_assert_eq!(radius, b.radius(), "radius differs at {}", u);
            prop_assert_eq!(scratch.order(), b.members());
            for &(v, _) in b.members() {
                prop_assert_eq!(scratch.first_hop(v), b.first_hop(v));
            }

            scratch.dijkstra_into(&g, u);
            let sp = reference::dijkstra_alloc(&g, u);
            for v in g.vertices() {
                prop_assert_eq!(scratch.dist(v), sp.dist(v));
                prop_assert_eq!(scratch.parent(v), sp.parent(v));
                prop_assert_eq!(scratch.first_hop(v), sp.first_hop(v));
            }
        }

        scratch.multi_source_into(&g, &sources);
        let ms = reference::multi_source_alloc(&g, &sources);
        for v in g.vertices() {
            prop_assert_eq!(scratch.dist(v), ms.dist(v));
            prop_assert_eq!(scratch.nearest(v), ms.nearest(v));
        }

        let bound: Vec<u64> = g.vertices().map(|v| ms.dist(v).unwrap_or(u64::MAX)).collect();
        for w in g.vertices().step_by(7) {
            scratch.cluster_into(&g, w, &bound);
            let tree = reference::cluster_dijkstra_hashmap(&g, w, &bound);
            prop_assert_eq!(scratch.order(), tree.members());
            for &(v, _) in tree.members() {
                prop_assert_eq!(Some(scratch.parent(v)), tree.parent(v));
            }
        }
    }

    /// The target-bounded early-exit search is a bit-identical prefix of the
    /// full search: the settled order is literally `full_order[..k]`, every
    /// requested target is settled with matching dist/parent/first-hop, and
    /// resuming past the frontier (`ensure_settled`) extends the same prefix
    /// — with identical results when the per-source searches are fanned out
    /// over worker scratches at thread counts 1 and 4.
    #[test]
    fn target_bounded_search_is_a_prefix_of_the_full_search(
        (g, _seed) in arb_graph(),
        stride in 3usize..9,
    ) {
        use routing_graph::{reference, SearchScratch};
        let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let sources: Vec<VertexId> = g.vertices().step_by(6).collect();
        // The far probe forces the resume path: the highest-id vertex is
        // rarely among the first targets settled.
        let far = VertexId((g.n() - 1) as u32);

        type Snapshot = (Vec<(VertexId, u64)>, Vec<(VertexId, u64)>, bool);
        let run = |threads: usize| -> Vec<Snapshot> {
            routing_par::set_threads(threads);
            let out = routing_par::par_map_scratch(
                sources.len(),
                || SearchScratch::for_graph(&g),
                |scratch, i| {
                    let src = sources[i];
                    let targets: Vec<VertexId> =
                        g.vertices().skip(i % stride).step_by(stride).take(4).collect();
                    scratch.dijkstra_targets_into(&g, src, &targets);
                    assert!(targets.iter().all(|&t| scratch.is_settled(t)));
                    let prefix = scratch.order().to_vec();
                    let resumed = scratch.ensure_settled(&g, far);
                    assert!(resumed, "graph is connected, far must be reachable");
                    (prefix, scratch.order().to_vec(), resumed)
                },
            );
            routing_par::set_threads(routing_par::available_threads());
            out
        };

        let single = run(1);
        let fanned = run(4);
        prop_assert_eq!(&single, &fanned, "thread count changed the settled prefixes");

        let mut full = SearchScratch::for_graph(&g);
        for (i, (prefix, extended, _)) in single.iter().enumerate() {
            let src = sources[i];
            full.dijkstra_into(&g, src);
            let full_order = full.order();
            // Both the stopped search and its resumed extension are literal
            // prefixes of the full settle order.
            prop_assert_eq!(&full_order[..prefix.len()], prefix.as_slice());
            prop_assert_eq!(&full_order[..extended.len()], extended.as_slice());
            prop_assert!(extended.iter().any(|&(v, _)| v == far));
            // Every settled vertex agrees with the allocating reference
            // search on dist, parent and first hop.
            let sp = reference::dijkstra_alloc(&g, src);
            let mut probe = SearchScratch::for_graph(&g);
            let targets: Vec<VertexId> =
                g.vertices().skip(i % stride).step_by(stride).take(4).collect();
            probe.dijkstra_targets_into(&g, src, &targets);
            probe.ensure_settled(&g, far);
            for &(v, d) in extended {
                prop_assert_eq!(probe.dist(v), Some(d));
                prop_assert_eq!(probe.dist(v), sp.dist(v));
                prop_assert_eq!(probe.parent(v), sp.parent(v));
                prop_assert_eq!(probe.first_hop(v), sp.first_hop(v));
            }
        }
    }

    /// The flat CSR `BallTable`, built at thread counts 1 and 4, is
    /// bit-identical to a table assembled per vertex from the pre-refactor
    /// `HashMap` ball search: same members in the same order, same
    /// membership answers, distances, ports and first hops, for members and
    /// non-members alike.
    #[test]
    fn flat_ball_table_matches_reference_at_thread_counts(
        (g, _seed) in arb_graph(),
        ell in 2usize..14,
    ) {
        use routing_graph::reference;
        let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for threads in [1usize, 4] {
            routing_par::set_threads(threads);
            let table = BallTable::build(&g, ell);
            routing_par::set_threads(routing_par::available_threads());
            for u in g.vertices() {
                let b = reference::ball_hashmap(&g, u, ell);
                prop_assert_eq!(table.ball(u).members(), b.members(), "threads={}", threads);
                prop_assert_eq!(table.ball(u).radius(), b.radius());
                for v in g.vertices() {
                    prop_assert_eq!(table.contains(u, v), b.contains(v));
                    prop_assert_eq!(table.dist(u, v), b.dist_to(v));
                    prop_assert_eq!(table.first_hop(u, v), b.first_hop(v));
                    let expect_port = b
                        .first_hop(v)
                        .map(|hop| g.port_to(u, hop).expect("first hop is a neighbour"));
                    prop_assert_eq!(table.first_port(u, v), expect_port);
                }
            }
        }
    }

    /// The flat (sorted-slice) TZ bunch tables answer exactly like the
    /// hierarchy's bunch lists: every bunch entry is found at its recorded
    /// distance, every non-member probe misses, the oracle's ping-pong query
    /// built on them matches a `HashMap`-based reference evaluation, and
    /// builds at thread counts 1 and 4 route identically.
    #[test]
    fn flat_tz_bunches_match_hashmap_baseline(seed in 1u64..500, n in 40usize..80) {
        use std::collections::HashMap;
        let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut gen_rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(
            n,
            10.0 / n as f64,
            WeightModel::Uniform { lo: 1, hi: 9 },
            &mut gen_rng,
        );

        let build = |threads: usize| {
            routing_par::set_threads(threads);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x72);
            let h = routing_baselines::TzHierarchy::build(&g, 2, &mut rng).unwrap();
            routing_par::set_threads(routing_par::available_threads());
            h
        };
        let h1 = build(1);
        let h4 = build(4);

        // Reference: per-vertex HashMaps rebuilt from the hierarchy's
        // bunch lists (the exact pre-refactor oracle layout).
        let bunch_maps: Vec<HashMap<VertexId, u64>> = g
            .vertices()
            .map(|v| h1.bunch(v).iter().copied().collect())
            .collect();
        let oracle = routing_baselines::TzOracle::new(h1.clone());
        for u in g.vertices() {
            for v in g.vertices() {
                // Reference ping-pong evaluation on the HashMaps.
                let expect = {
                    if u == v { 0 } else {
                        let (mut a, mut b) = (u, v);
                        let mut w = a;
                        let mut i = 0usize;
                        loop {
                            if let Some(&dwv) = bunch_maps[b.index()].get(&w) {
                                let dwu = bunch_maps[a.index()]
                                    .get(&w)
                                    .copied()
                                    .unwrap_or_else(|| h1.pivot(i, a).1);
                                break dwu + dwv;
                            }
                            i += 1;
                            std::mem::swap(&mut a, &mut b);
                            w = h1.pivot(i, a).0;
                        }
                    }
                };
                prop_assert_eq!(oracle.query(u, v), expect, "oracle differs on ({}, {})", u, v);
            }
            // Membership fidelity: every bunch entry hits, non-members miss.
            prop_assert_eq!(h1.bunch(u), h4.bunch(u));
        }

        let s1 = routing_baselines::TzRoutingScheme::new(h1);
        let s4 = routing_baselines::TzRoutingScheme::new(h4);
        for u in g.vertices().step_by(5) {
            for v in g.vertices().step_by(3) {
                let a = simulate(&g, &s1, u, v).unwrap();
                let b = simulate(&g, &s4, u, v).unwrap();
                prop_assert_eq!(a.weight, b.weight);
                prop_assert_eq!(a.hops, b.hops);
            }
        }
    }

    /// The public wrapper entry points (fresh-workspace-per-call) are
    /// bit-identical to the reference implementations too — the contract the
    /// rest of the workspace relies on when it mixes wrappers and scratch.
    #[test]
    fn wrapper_entry_points_match_reference((g, _seed) in arb_graph(), ell in 2usize..12) {
        use routing_graph::reference;
        use routing_graph::shortest_path::{ball, dijkstra, multi_source_dijkstra};
        for u in g.vertices().step_by(11) {
            let a = dijkstra(&g, u);
            let b = reference::dijkstra_alloc(&g, u);
            for v in g.vertices() {
                prop_assert_eq!(a.dist(v), b.dist(v));
                prop_assert_eq!(a.parent(v), b.parent(v));
                prop_assert_eq!(a.first_hop(v), b.first_hop(v));
                prop_assert_eq!(a.path_to(v), b.path_to(v));
            }
            let a = ball(&g, u, ell);
            let b = reference::ball_hashmap(&g, u, ell);
            prop_assert_eq!(a.members(), b.members());
            prop_assert_eq!(a.radius(), b.radius());
        }
        let sources: Vec<VertexId> = g.vertices().step_by(6).collect();
        let a = multi_source_dijkstra(&g, &sources);
        let b = reference::multi_source_alloc(&g, &sources);
        for v in g.vertices() {
            prop_assert_eq!(a.dist(v), b.dist(v));
            prop_assert_eq!(a.nearest(v), b.nearest(v));
        }
    }
}

// ---------------------------------------------------------------------------
// Erasure fidelity: the object-safe `DynScheme` surface must be observably
// indistinguishable from the typed `RoutingScheme` it erases.
// ---------------------------------------------------------------------------

/// Walks `(u, v)` twice — once through the typed `RoutingScheme` methods,
/// once through the erased `DynScheme` surface of the *same* scheme value —
/// asserting identical decisions, identical header words at every hop, and
/// the same delivered weight. Also checks the per-vertex word accounting
/// and the label word count the erased label carries.
fn assert_erasure_fidelity<S: routing_model::RoutingScheme + Send + Sync>(
    g: &Graph,
    scheme: &S,
    pairs: &[(VertexId, VertexId)],
) {
    use routing_model::{Decision, DynScheme, HeaderSize, RoutingScheme};
    let erased: &dyn DynScheme = scheme;
    assert_eq!(RoutingScheme::name(scheme), erased.name());
    assert_eq!(RoutingScheme::n(scheme), erased.n());
    for v in g.vertices() {
        assert_eq!(RoutingScheme::table_words(scheme, v), erased.table_words(v));
        assert_eq!(RoutingScheme::label_words(scheme, v), erased.label_words(v));
    }
    for &(u, v) in pairs {
        let typed_label = RoutingScheme::label_of(scheme, v);
        let erased_label = erased.label_of(v);
        assert_eq!(
            erased_label.words(),
            RoutingScheme::label_words(scheme, v),
            "erased label must carry the typed word count"
        );
        let mut typed_header =
            RoutingScheme::init_header(scheme, u, &typed_label).expect("typed init");
        let mut erased_header = erased.init_header(u, &erased_label).expect("erased init");
        let mut at = u;
        let mut typed_weight = 0u64;
        let mut hops = 0usize;
        loop {
            assert_eq!(
                HeaderSize::words(&typed_header),
                HeaderSize::words(&erased_header),
                "header words diverged at {at} while routing {u}->{v}"
            );
            let td = RoutingScheme::decide(scheme, at, &mut typed_header, &typed_label)
                .expect("typed decide");
            let ed =
                erased.decide(at, &mut erased_header, &erased_label).expect("erased decide");
            assert_eq!(td, ed, "decision diverged at {at} while routing {u}->{v}");
            match td {
                Decision::Deliver => {
                    assert_eq!(at, v, "scheme delivered at the wrong vertex");
                    break;
                }
                Decision::Forward(port) => {
                    let edge = g.neighbor_at(at, port);
                    typed_weight += edge.weight;
                    at = edge.to;
                    hops += 1;
                    assert!(hops <= 4 * g.n() + 16, "walk exceeded the hop budget");
                }
            }
        }
        // The shared simulator (which consumes &dyn DynScheme) must agree
        // with the typed step-by-step walk above.
        let out = simulate(g, erased, u, v).expect("simulate routes the pair");
        assert_eq!(out.weight, typed_weight);
        assert_eq!(out.hops, hops);
    }
}

/// A shared sampled-pair population for the fidelity walks.
fn fidelity_pairs(g: &Graph, rng: &mut StdRng) -> Vec<(VertexId, VertexId)> {
    let ids: Vec<VertexId> = g.vertices().collect();
    routing_model::sample_pairs_from(&ids, &ids, 30, rng)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// For every scheme the default registry registers, the erased
    /// `DynScheme` and the typed scheme produce identical decisions, routed
    /// weights, header words, and table/label words on sampled pairs of a
    /// random (unweighted — valid input for every scheme, including Thm 10)
    /// Erdős–Rényi graph.
    #[test]
    fn erased_and_typed_schemes_are_indistinguishable(seed in 1u64..1_000, n in 40usize..70) {
        use compact_routing::registry::SchemeRegistry;
        use routing_core::{BuildContext, Params};

        let mut gen_rng = StdRng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, 10.0 / n as f64, WeightModel::Unit, &mut gen_rng);
        let registry = SchemeRegistry::with_defaults();
        let ctx = BuildContext {
            params: Params::with_epsilon(0.5),
            seed: seed ^ 0xf1de,
            threads: 1,
        };
        let mut pair_rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let pairs = fidelity_pairs(&g, &mut pair_rng);

        for key in registry.names() {
            // The registry-built scheme must be interchangeable with a
            // typed build from the same context...
            let built = registry.build(key, &g, &ctx).expect(key);
            prop_assert_eq!(built.name(), key);
            // ...and the typed twin, viewed through the erased surface,
            // must be observably identical to its typed self.
            let mut rng = ctx.rng();
            match key {
                "warmup" => assert_erasure_fidelity(
                    &g,
                    &SchemeThreePlusEps::build(&g, &ctx.params, &mut rng).unwrap(),
                    &pairs,
                ),
                "thm10" => assert_erasure_fidelity(
                    &g,
                    &routing_core::SchemeTwoPlusEps::build(&g, &ctx.params, &mut rng).unwrap(),
                    &pairs,
                ),
                "thm11" => assert_erasure_fidelity(
                    &g,
                    &SchemeFivePlusEps::build(&g, &ctx.params, &mut rng).unwrap(),
                    &pairs,
                ),
                "tz2" => assert_erasure_fidelity(
                    &g,
                    &routing_baselines::TzRoutingScheme::build(&g, 2, &mut rng).unwrap(),
                    &pairs,
                ),
                "tz3" => assert_erasure_fidelity(
                    &g,
                    &routing_baselines::TzRoutingScheme::build(&g, 3, &mut rng).unwrap(),
                    &pairs,
                ),
                "exact" => assert_erasure_fidelity(
                    &g,
                    &routing_baselines::ExactScheme::build(&g).unwrap(),
                    &pairs,
                ),
                "spanner" => assert_erasure_fidelity(
                    &g,
                    &routing_baselines::SpannerScheme::build(&g, 2).unwrap(),
                    &pairs,
                ),
                "thm13" => assert_erasure_fidelity(
                    &g,
                    &routing_core::SchemeMultilevel::build(&g, 2, "thm13", &ctx.params, &mut rng)
                        .unwrap(),
                    &pairs,
                ),
                "thm15" => assert_erasure_fidelity(
                    &g,
                    &routing_core::SchemeMultilevel::build(&g, 4, "thm15", &ctx.params, &mut rng)
                        .unwrap(),
                    &pairs,
                ),
                "thm16k3" => assert_erasure_fidelity(
                    &g,
                    &routing_baselines::Thm16Scheme::build(&g, 3, &ctx.params, &mut rng).unwrap(),
                    &pairs,
                ),
                other => panic!("registered scheme {other} has no typed twin in this test"),
            }
            // Finally, the registry-built (erased) scheme routes every
            // sampled pair to the right destination through the shared
            // simulator.
            for &(u, v) in &pairs {
                let a = simulate(&g, built.as_ref(), u, v).expect("registry scheme routes");
                assert_eq!(a.destination(), v);
            }
        }
    }
}
